"""One network node: resources, durable queue, dispatch loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.agent.packages import AgentPackage, PackageKind
from repro.errors import UsageError
from repro.resources.base import TransactionalResource
from repro.storage.queues import AgentInputQueue, QueueItem
from repro.storage.stable import StableStore
from repro.tx.manager import TransactionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compensation.registry import CompensationRegistry
    from repro.node.runtime import World
    from repro.sim.kernel import Simulator
    from repro.sim.timing import TimingModel


class Node:
    """An agent server: executes steps and compensations for visitors.

    Durable across crashes: the input queue, the stable store and the
    committed state of hosted resources.  Volatile (wiped by a crash):
    in-flight transactions (aborted with full undo) and the dispatch
    schedule (rebuilt by a queue rescan at recovery) — this is exactly
    the recovery behaviour the paper's protocols rely on.

    A node never talks to the network directly: packages leave through
    the world's shipping helpers (which resolve the Transport stack and
    the delivery seam, see :mod:`repro.node.runtime`) and arrive by
    appearing in the durable input queue — whether enqueued by a local
    commit, an FT shadow delivery, or a cross-shard bridge injection.
    """

    def __init__(self, name: str, world: "World"):
        self.name = name
        self.world = world
        self.queue = AgentInputQueue(name)
        self.stable = StableStore(f"{name}.stable")
        self.txm = TransactionManager(name)
        self.resources: dict[str, TransactionalResource] = {}
        self._scheduled: set[int] = set()  # volatile dispatch dedupe
        self.pending_rollback: dict[int, str] = {}  # volatile: item -> spID
        self.queue.on_visible = self._on_visible
        world.failures.on_crash(name, self._on_crash)
        world.failures.on_recover(name, self._on_recover)

    # -- conveniences ---------------------------------------------------------

    @property
    def sim(self) -> "Simulator":
        return self.world.sim

    @property
    def timing(self) -> "TimingModel":
        return self.world.timing

    @property
    def registry(self) -> "CompensationRegistry":
        return self.world.registry

    @property
    def up(self) -> bool:
        return self.world.failures.node_up(self.name)

    # -- resources ----------------------------------------------------------------

    def add_resource(self, resource: TransactionalResource) -> TransactionalResource:
        """Host ``resource`` on this node."""
        if resource.name in self.resources:
            raise UsageError(f"{self.name}: resource {resource.name!r} exists")
        if self.world.journal is not None and self.world.journal.armed:
            from repro.storage.serialization import capture
            self.world._journal_setup("add_resource", node=self.name,
                                      blob=capture(resource))
        resource.attach(self.name)
        self.resources[resource.name] = resource
        return resource

    def share_resource(self, resource: TransactionalResource) -> None:
        """Host a resource replicated on several nodes (FT rollback).

        The resource keeps its primary attachment; this node gains
        access for alternate compensation execution.
        """
        self.world._journal_setup("share_resource", node=self.name,
                                  from_node=resource.node,
                                  name=resource.name)
        self.resources[resource.name] = resource

    def get_resource(self, name: str) -> TransactionalResource:
        resource = self.resources.get(name)
        if resource is None:
            raise UsageError(f"{self.name}: no resource {name!r}")
        return resource

    # -- dispatch loop ---------------------------------------------------------------

    def _on_visible(self, item: QueueItem) -> None:
        """A package became visible in the queue (enqueue or undo)."""
        if not self.up:
            return  # recovery rescan will pick it up
        delay = 0.0
        if item.attempts:
            backoff = self.world.net_params.retry_backoff
            delay = backoff * min(item.attempts, 8)
        self.request_dispatch(item, delay)

    def request_dispatch(self, item: QueueItem, delay: float = 0.0) -> None:
        """Schedule processing of ``item`` exactly once per visibility."""
        if item.item_id in self._scheduled:
            return
        self._scheduled.add(item.item_id)
        self.sim.schedule(delay, lambda: self._dispatch(item.item_id),
                          label=f"dispatch:{self.name}:{item.item_id}")

    def _dispatch(self, item_id: int) -> None:
        self._scheduled.discard(item_id)
        if not self.up:
            return
        item = self._find(item_id)
        if item is None:
            return  # consumed by an earlier transaction
        package = item.payload
        if not isinstance(package, AgentPackage):  # pragma: no cover
            raise UsageError(f"{self.name}: queue holds non-package payload")
        if package.kind is PackageKind.SHADOW:
            return  # inert until promoted by the FT watchdog
        sp_id = self.pending_rollback.pop(item_id, None)
        if package.kind is PackageKind.STEP and sp_id is not None:
            driver = self.world.rollback_driver(package.mode)
            driver.start_rollback(self, item, sp_id)
            return
        if package.kind is PackageKind.STEP:
            self.world.step_protocol.execute(self, item)
            return
        driver = self.world.rollback_driver(package.mode)
        driver.execute_compensation(self, item)

    def _find(self, item_id: int) -> Optional[QueueItem]:
        for item in self.queue.items():
            if item.item_id == item_id:
                return item
        return None

    # -- crash / recovery ----------------------------------------------------------------

    def _on_crash(self) -> None:
        aborted = self.txm.abort_all()
        if aborted:
            self.world.metrics.incr("crash.tx_aborted", aborted)
        self._scheduled.clear()
        self.pending_rollback.clear()
        self.world.metrics.incr("crash.count")
        self.world.metrics.record(self.sim.now, "crash", node=self.name)

    def _on_recover(self) -> None:
        self.world.metrics.record(self.sim.now, "recover", node=self.name)
        for item in self.queue.items():
            self.request_dispatch(item)
