"""Node runtime and world wiring.

A :class:`~repro.node.node.Node` hosts transactional resources, one
durable agent input queue, a transaction manager and the dispatch loop
that turns queued agent packages into step or compensation
transactions.  A :class:`~repro.node.runtime.World` owns the simulator,
the transport stack (see :mod:`repro.net.transport`), the failure
injector, the set of nodes, the protocol drivers and the per-agent
records — it is the facade examples, tests and benches build scenarios
with.  A :class:`~repro.node.sharded.ShardedWorld` partitions the node
set across several independent kernels behind the same facade, scaling
concurrent-agent workloads past what one event queue can hold.
"""

from repro.node.node import Node
from repro.node.procshard import ProcShardedWorld
from repro.node.runtime import AgentRecord, AgentStatus, World
from repro.node.sharded import CrossShardBridge, ShardedWorld, ShardWorld

__all__ = ["Node", "World", "AgentRecord", "AgentStatus", "ShardedWorld",
           "ShardWorld", "CrossShardBridge", "ProcShardedWorld"]
