"""Compensation-type taxonomy (paper, Section 3.2).

The paper distinguishes, in decreasing order of comfort:

1. **SOUND** — compensation commutes with every dependent operation;
   the history of T, CT and dep(T) is sound and ``T • CT ≡ I``.
2. **EQUIVALENT** — compensation produces a state merely *equivalent*
   to the initial one (digital cash returns with different serials).
3. **ALTERED** — compensation leaves genuinely different information
   behind (fees charged, credit notes instead of cash); "the agent must
   be able to deal with the changed situation".
4. **FAILABLE** — compensation can fail at runtime (withdrawing from a
   drained, non-overdraftable account) and must be retried or resolved
   by policy.
5. **IMPOSSIBLE** — the operation cannot be compensated at all; a step
   containing one can never be rolled back after commit.

The enum is used by resources/examples to label what a compensating
operation guarantees and by benches to summarise workload mixes; the
*mechanism* only hard-distinguishes IMPOSSIBLE (refuse rollback) and
FAILABLE (retry policy), exactly as in the paper.
"""

from __future__ import annotations

import enum


class CompensationOutcome(enum.Enum):
    """What a compensating operation promises about the resulting state."""

    SOUND = "sound"
    EQUIVALENT = "equivalent"
    ALTERED = "altered"
    FAILABLE = "failable"
    IMPOSSIBLE = "impossible"

    @property
    def restores_exactly(self) -> bool:
        """True only for SOUND compensation."""
        return self is CompensationOutcome.SOUND

    @property
    def rollback_possible(self) -> bool:
        """False only for IMPOSSIBLE."""
        return self is not CompensationOutcome.IMPOSSIBLE
