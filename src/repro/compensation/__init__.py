"""Compensation: formal model (Section 3) and operation registry.

:mod:`repro.compensation.history` implements the notations of
Section 3.1 — operations as functions over the *augmented state* (the
resource state space merged with the agent's private data space),
histories as both sequences and composed functions, history equality,
commutativity and the soundness criterion of Korth/Levy/Silberschatz.

:mod:`repro.compensation.registry` holds the executable compensating
operations referenced by operation entries.  An entry ships a code
*reference* plus parameters (the mobile-code analogue of the paper's
"the code of one compensating operation and the parameters"); the
registry enforces the access rules of Section 4.4.1 by construction:
resource compensations never see the agent, agent compensations never
see resources, and no compensation ever sees the strongly reversible
objects.
"""

from repro.compensation.history import (
    History,
    Operation,
    commutes,
    histories_equal,
    is_sound,
)
from repro.compensation.registry import (
    CompensationContext,
    CompensationRegistry,
    GLOBAL_REGISTRY,
    agent_compensation,
    mixed_compensation,
    resource_compensation,
)
from repro.compensation.outcomes import CompensationOutcome

__all__ = [
    "Operation",
    "History",
    "histories_equal",
    "commutes",
    "is_sound",
    "CompensationRegistry",
    "CompensationContext",
    "GLOBAL_REGISTRY",
    "resource_compensation",
    "agent_compensation",
    "mixed_compensation",
    "CompensationOutcome",
]
