"""Histories over the augmented state (paper, Section 3.1).

The *augmented state space* merges the state of the resources accessed
by the agent with the agent's private data space, so one formalism
covers both what a step did to resources and what it did to the agent.
We represent augmented states as plain dictionaries and operations as
pure functions from state to state that "may read and write any number
of entities" (the paper relaxes Korth et al.'s single-entity
operations).

Because function equality is undecidable, the equality, commutativity
and soundness predicates are checked over explicit finite sets of
sample states — exactly how the hypothesis-based property tests use
them: quantify over generated states and conclude with statistical
confidence.  For the algebraic examples in the paper (bank deposits and
withdrawals) the sampled check is in fact exact, since the operations
are affine in the balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.storage.serialization import capture, snapshot

AugmentedState = dict  # alias for readability

StateFn = Callable[[AugmentedState], AugmentedState]


@dataclass(frozen=True)
class Operation:
    """A named pure function on augmented states."""

    name: str
    fn: StateFn

    def __call__(self, state: AugmentedState) -> AugmentedState:
        # Operate on a snapshot so operations can mutate freely without
        # aliasing the caller's state.
        return self.fn(snapshot(state))


class History:
    """A sequence of operations; also the function they compose to.

    ``X = <f1, f2, ..., fn>`` applies f1 first (the paper's
    ``f1 • f2 • ... • fn`` with left-to-right application).
    """

    def __init__(self, ops: Iterable[Operation] = ()):
        self.ops: tuple[Operation, ...] = tuple(ops)

    def __call__(self, state: AugmentedState) -> AugmentedState:
        for op in self.ops:
            state = op(state)
        return state

    def then(self, other: "History") -> "History":
        """Concatenate: ``self`` runs before ``other`` (X • Y)."""
        return History(self.ops + other.ops)

    def reversed(self) -> "History":
        """The same operations in reverse order."""
        return History(tuple(reversed(self.ops)))

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<" + ", ".join(op.name for op in self.ops) + ">"


def _state_key(state: AugmentedState) -> bytes:
    return capture(sorted(state.items(), key=lambda kv: repr(kv[0])))


def histories_equal(x: History, y: History,
                    states: Sequence[AugmentedState]) -> bool:
    """X ≡ Y over the sampled ``states``: for all S, X(S) = Y(S)."""
    return all(_state_key(x(s)) == _state_key(y(s)) for s in states)


def commutes(x: History, y: History,
             states: Sequence[AugmentedState]) -> bool:
    """(X • Y) ≡ (Y • X) over the sampled ``states``."""
    return histories_equal(x.then(y), y.then(x), states)


def is_sound(t: History, ct: History, dep: History,
             states: Sequence[AugmentedState]) -> bool:
    """Soundness of compensation (Section 3.2, after Korth et al.).

    A history is sound iff ``X(S) = Y(S)`` where X is the history of T,
    CT and dep(T) — T first, then the dependent transactions, then the
    compensation — and Y is the history of dep(T) alone: the outcome of
    the dependent transactions is not influenced by T having run and
    been compensated.
    """
    x = t.then(dep).then(ct)
    return histories_equal(x, dep, states)


def identity() -> History:
    """The identity history I (soundness implies T • CT ≡ I)."""
    return History()
