"""Executable compensating operations.

An operation entry in the rollback log carries ``(op_name, params)``.
At compensation time the runtime resolves ``op_name`` here and invokes
the function with exactly the views its kind permits (Section 4.4.1):

==========  =====================================================
kind        signature
==========  =====================================================
RESOURCE    ``fn(resource_view, params, ctx)`` — no agent access
AGENT       ``fn(wro_view, params, ctx)`` — no resource access
MIXED       ``fn(wro_view, resource_view, params, ctx)``
==========  =====================================================

``wro_view`` exposes *only* the weakly reversible objects — the ban on
touching strongly reversible objects during compensation (Section 4.3)
is enforced by never handing compensation code a path to them.

Functions must be module-level (importable) so entries stay picklable
as pure code references, mirroring how the paper's Java platform would
ship compensation classes by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import UnknownCompensation, UsageError
from repro.log.entries import OperationKind


@dataclass(frozen=True)
class CompensationContext:
    """Ambient facts a compensating operation may consult."""

    now: float
    node: str


@dataclass(frozen=True)
class RegisteredOp:
    """One registry slot."""

    name: str
    kind: OperationKind
    fn: Callable[..., Any]


def _same_function(a: Callable[..., Any], b: Callable[..., Any]) -> bool:
    """Whether ``a`` and ``b`` are the same source-level function.

    A module imported twice under different names (e.g. pytest
    collecting ``test_x`` while another test imports ``tests.test_x``)
    re-executes its decorators with *distinct* function objects for the
    same ``def``.  Two closure-free functions defined at the same
    source location with the same qualified name and defaults are the
    same function for registry purposes; anything else — including
    factory-produced closures, whose behaviour depends on captured
    state the source location cannot see — is a genuine conflict.
    """
    if a is b:
        return True
    code_a = getattr(a, "__code__", None)
    code_b = getattr(b, "__code__", None)
    if code_a is None or code_b is None:
        return False
    if getattr(a, "__closure__", None) or getattr(b, "__closure__", None):
        return False
    return (getattr(a, "__qualname__", None) == getattr(b, "__qualname__",
                                                        None)
            and code_a.co_filename == code_b.co_filename
            and code_a.co_firstlineno == code_b.co_firstlineno
            and getattr(a, "__defaults__", None) == getattr(b, "__defaults__",
                                                            None)
            and getattr(a, "__kwdefaults__", None)
            == getattr(b, "__kwdefaults__", None))


class CompensationRegistry:
    """Name → compensating operation mapping."""

    def __init__(self) -> None:
        self._ops: dict[str, RegisteredOp] = {}

    def register(self, name: str, kind: OperationKind,
                 fn: Callable[..., Any]) -> None:
        """Register ``fn`` under ``name``; re-registration must agree.

        Re-registering the *identical* function (same object, or the
        same def re-executed by a duplicate module import) is an
        idempotent refresh; registering a different function under an
        existing name stays an error.
        """
        existing = self._ops.get(name)
        if existing is not None:
            if existing.kind is not kind or not _same_function(existing.fn,
                                                               fn):
                raise UsageError(f"compensation {name!r} already registered")
        self._ops[name] = RegisteredOp(name=name, kind=kind, fn=fn)

    def snapshot_ops(self) -> dict[str, RegisteredOp]:
        """Copy of the current registrations (for scoped restore)."""
        return dict(self._ops)

    def restore_ops(self, ops: dict[str, RegisteredOp]) -> None:
        """Replace the registrations with a previous snapshot."""
        self._ops = dict(ops)

    def resolve(self, name: str) -> RegisteredOp:
        """Look up ``name`` or raise :class:`UnknownCompensation`."""
        op = self._ops.get(name)
        if op is None:
            raise UnknownCompensation(name)
        return op

    def names(self) -> list[str]:
        return sorted(self._ops)


GLOBAL_REGISTRY = CompensationRegistry()


def resource_compensation(name: str,
                          registry: Optional[CompensationRegistry] = None):
    """Decorator: register a resource compensation (RCE) operation."""
    return _register(name, OperationKind.RESOURCE, registry)


def agent_compensation(name: str,
                       registry: Optional[CompensationRegistry] = None):
    """Decorator: register an agent compensation (ACE) operation."""
    return _register(name, OperationKind.AGENT, registry)


def mixed_compensation(name: str,
                       registry: Optional[CompensationRegistry] = None):
    """Decorator: register a mixed compensation (MCE) operation."""
    return _register(name, OperationKind.MIXED, registry)


def _register(name: str, kind: OperationKind,
              registry: Optional[CompensationRegistry]):
    target = registry if registry is not None else GLOBAL_REGISTRY

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        target.register(name, kind, fn)
        return fn

    return decorator
