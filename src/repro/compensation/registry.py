"""Executable compensating operations.

An operation entry in the rollback log carries ``(op_name, params)``.
At compensation time the runtime resolves ``op_name`` here and invokes
the function with exactly the views its kind permits (Section 4.4.1):

==========  =====================================================
kind        signature
==========  =====================================================
RESOURCE    ``fn(resource_view, params, ctx)`` — no agent access
AGENT       ``fn(wro_view, params, ctx)`` — no resource access
MIXED       ``fn(wro_view, resource_view, params, ctx)``
==========  =====================================================

``wro_view`` exposes *only* the weakly reversible objects — the ban on
touching strongly reversible objects during compensation (Section 4.3)
is enforced by never handing compensation code a path to them.

Functions must be module-level (importable) so entries stay picklable
as pure code references, mirroring how the paper's Java platform would
ship compensation classes by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import UnknownCompensation, UsageError
from repro.log.entries import OperationKind


@dataclass(frozen=True)
class CompensationContext:
    """Ambient facts a compensating operation may consult."""

    now: float
    node: str


@dataclass(frozen=True)
class RegisteredOp:
    """One registry slot."""

    name: str
    kind: OperationKind
    fn: Callable[..., Any]


class CompensationRegistry:
    """Name → compensating operation mapping."""

    def __init__(self) -> None:
        self._ops: dict[str, RegisteredOp] = {}

    def register(self, name: str, kind: OperationKind,
                 fn: Callable[..., Any]) -> None:
        """Register ``fn`` under ``name``; re-registration must agree."""
        existing = self._ops.get(name)
        if existing is not None and existing.fn is not fn:
            raise UsageError(f"compensation {name!r} already registered")
        self._ops[name] = RegisteredOp(name=name, kind=kind, fn=fn)

    def resolve(self, name: str) -> RegisteredOp:
        """Look up ``name`` or raise :class:`UnknownCompensation`."""
        op = self._ops.get(name)
        if op is None:
            raise UnknownCompensation(name)
        return op

    def names(self) -> list[str]:
        return sorted(self._ops)


GLOBAL_REGISTRY = CompensationRegistry()


def resource_compensation(name: str,
                          registry: Optional[CompensationRegistry] = None):
    """Decorator: register a resource compensation (RCE) operation."""
    return _register(name, OperationKind.RESOURCE, registry)


def agent_compensation(name: str,
                       registry: Optional[CompensationRegistry] = None):
    """Decorator: register an agent compensation (ACE) operation."""
    return _register(name, OperationKind.AGENT, registry)


def mixed_compensation(name: str,
                       registry: Optional[CompensationRegistry] = None):
    """Decorator: register a mixed compensation (MCE) operation."""
    return _register(name, OperationKind.MIXED, registry)


def _register(name: str, kind: OperationKind,
              registry: Optional[CompensationRegistry]):
    target = registry if registry is not None else GLOBAL_REGISTRY

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        target.register(name, kind, fn)
        return fn

    return decorator
