"""Mobile agent model (paper, Section 2).

Agents are autonomous objects performing a job on behalf of their
owner.  The set of actions an agent performs on a single node is a
*step*, implemented as a single method of the agent object.  Between
steps the agent — code reference plus all private data — is captured
(pickled) and parked in the next node's durable input queue.

The private data space is split per Section 4.1:

* ``agent.sro`` — **strongly reversible objects**: restored by the
  system from before-images in the rollback log; never touched by
  compensating operations.
* ``agent.wro`` — **weakly reversible objects**: restored by
  developer-supplied compensating operations (registered through the
  :class:`~repro.agent.context.StepContext`), because rollback can
  produce genuinely new information (fresh coin serials, fees, credit
  notes).

Step code interacts with the world exclusively through the
:class:`~repro.agent.context.StepContext` passed to each step method.
"""

from repro.agent.agent import MobileAgent
from repro.agent.context import StepContext, WROView
from repro.agent.packages import AgentPackage, PackageKind

__all__ = [
    "MobileAgent",
    "StepContext",
    "WROView",
    "AgentPackage",
    "PackageKind",
]
