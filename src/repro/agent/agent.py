"""The mobile agent object."""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import UsageError

_AGENT_SEQ = itertools.count(1)

CONTROL_KEY = "__control__"


class MobileAgent:
    """Base class for mobile agents.

    Subclasses implement steps as methods taking a single
    :class:`~repro.agent.context.StepContext` argument::

        class Shopper(MobileAgent):
            def find_offers(self, ctx):
                directory = ctx.resource("directory")
                self.sro["offers"] = directory.query("books")
                ctx.goto("shop-node", "buy_best")

            def buy_best(self, ctx):
                ...

    Agents must stay picklable: subclasses must be importable
    module-level classes, and the private data spaces must hold only
    picklable values.  The runtime captures the agent with
    :func:`repro.storage.serialization.capture` on every migration,
    exactly like the paper's platform serialises agents.

    Attributes
    ----------
    sro:
        Strongly reversible objects — restored from log images on
        rollback.  The runtime keeps its continuation record (which step
        runs next, and where) under the reserved key ``__control__`` so
        control state rolls back with the data (the paper's "the private
        agent state is rolled back as well").
    wro:
        Weakly reversible objects — compensated by registered
        operations during rollback.
    """

    def __init__(self, agent_id: Optional[str] = None):
        self.agent_id = agent_id or f"agent-{next(_AGENT_SEQ)}"
        self.sro: dict[str, Any] = {}
        self.wro: dict[str, Any] = {}
        self.step_count = 0
        self.finished = False
        self.result: Any = None

    # -- control record ----------------------------------------------------------

    @property
    def control(self) -> Optional[dict[str, Any]]:
        """The continuation record: ``{"node": ..., "method": ...}``."""
        return self.sro.get(CONTROL_KEY)

    def set_control(self, node: str, method: str) -> None:
        """Point the continuation at ``method`` on ``node``."""
        if not hasattr(self, method):
            raise UsageError(
                f"{type(self).__name__} has no step method {method!r}")
        self.sro[CONTROL_KEY] = {"node": node, "method": method}

    def clear_control(self) -> None:
        self.sro[CONTROL_KEY] = None

    def step_method(self, name: str):
        """Resolve a step method by name."""
        method = getattr(self, name, None)
        if method is None or not callable(method):
            raise UsageError(
                f"{type(self).__name__} has no step method {name!r}")
        return method

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.agent_id} "
                f"steps={self.step_count} finished={self.finished}>")
