"""Agent packages — what actually sits in a durable input queue.

A package is the serialised pair (agent, rollback log) plus routing and
protocol metadata.  For *step* packages the metadata says which step to
run; for *compensation* packages it carries the rollback target
savepoint and mode ("(spID, agent, LOG)" of Figures 4/5); *shadow*
packages are the fault-tolerant protocol's replicas, inert until
promoted.

Keeping agent+log as one opaque blob gives the clean state boundary of
a real migration: a transaction that aborts after mutating the restored
copy leaves the durable blob untouched — undo for free — and the blob
length is the honest transfer/migration payload size.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.log.rollback_log import RollbackLog
from repro.storage.serialization import capture, restore


_WORK_IDS = itertools.count(1)


class PackageKind(str, enum.Enum):
    """What the receiving node should do with the package."""

    STEP = "step"
    COMPENSATION = "compensation"
    SHADOW = "shadow"


class RollbackMode(str, enum.Enum):
    """Which rollback algorithm drives compensation packages."""

    BASIC = "basic"          # Figure 4
    OPTIMIZED = "optimized"  # Figure 5
    SAGA = "saga"            # baseline: restore full state image (ref [4])


class Protocol(str, enum.Enum):
    """Step-execution protocol family (ref [11])."""

    BASIC = "basic"
    FAULT_TOLERANT = "ft"


@dataclass
class AgentPackage:
    """One durable queue payload."""

    kind: PackageKind
    agent_id: str
    blob: bytes  # capture((agent, log))
    step_index: int
    sp_id: Optional[str] = None  # rollback target (compensation packages)
    mode: RollbackMode = RollbackMode.BASIC
    protocol: Protocol = Protocol.BASIC
    alternates: tuple[str, ...] = ()
    # Fault-tolerant protocol metadata (ref [11]):
    # ``work_id`` uniquely identifies one unit of work so primary and
    # promoted-shadow executions exclude each other through the step
    # ledger; ``primary`` names the node originally responsible;
    # ``promoted`` marks a shadow that took over.
    work_id: int = field(default_factory=lambda: next(_WORK_IDS))
    primary: Optional[str] = None
    promoted: bool = False

    @classmethod
    def pack(cls, kind: PackageKind, agent: Any, log: RollbackLog,
             step_index: int, **meta: Any) -> "AgentPackage":
        """Capture ``agent`` and ``log`` into a package."""
        return cls(kind=kind, agent_id=agent.agent_id,
                   blob=capture((agent, log)), step_index=step_index,
                   **meta)

    def unpack(self) -> tuple[Any, RollbackLog]:
        """Re-instantiate (agent, log) from the blob."""
        agent, log = restore(self.blob)
        return agent, log

    @property
    def size_bytes(self) -> int:
        """Serialised payload size (the migration transfer cost)."""
        return len(self.blob)

    def as_kind(self, kind: PackageKind, **meta: Any) -> "AgentPackage":
        """Copy with a different kind (shadow promotion etc.)."""
        return replace(self, kind=kind, **meta)
