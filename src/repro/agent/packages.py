"""Agent packages — what actually sits in a durable input queue.

A package is the serialised pair (agent, rollback log) plus routing and
protocol metadata.  For *step* packages the metadata says which step to
run; for *compensation* packages it carries the rollback target
savepoint and mode ("(spID, agent, LOG)" of Figures 4/5); *shadow*
packages are the fault-tolerant protocol's replicas, inert until
promoted.

Framing is **incremental**: instead of one monolithic
``pickle((agent, log))`` blob, a package holds the agent blob plus one
frame per log entry (``agent_blob + per-entry log blobs``).  Entries
cache their serialised form (:meth:`~repro.log.entries.LogEntry.blob`),
so packing an n-entry log after one more step re-pickles only the
entries that step appended — the rest are reused byte-for-byte from the
previous migration.  An n-step tour therefore does O(n) total entry
pickling instead of the O(n²) a monolithic re-pickle per hop costs.

The framing preserves the two properties the monolithic blob provided:

* **State boundary** — :meth:`AgentPackage.unpack` re-instantiates the
  agent (eagerly) and every log entry (lazily, on first read) from
  bytes, so a transaction that aborts after mutating the restored
  copies leaves the durable frames untouched (undo for free).
* **Honest sizes** — :attr:`AgentPackage.size_bytes` is the sum of the
  actual serialised frames plus fixed framing overhead (length
  prefixes) plus the packed savepoint index the package carries, i.e.
  exactly what a length-prefixed wire format would move.

The per-entry frames are also what the batching transport
(:mod:`repro.net.batching`) coalesces: a batch frame carries whole
packages whose sizes are already known from their cached frames, so
batching co-located migrations serialises nothing extra.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.log.modes import LoggingMode
from repro.log.rollback_log import (
    FRAME_PREFIX_BYTES,
    LOG_HEADER_BYTES,
    RollbackLog,
    savepoint_index_bytes,
)
from repro.storage.serialization import capture, restore


_WORK_IDS = itertools.count(1)

#: Width of one process's work-id namespace (see
#: :func:`set_work_id_namespace`).  Far above any realistic number of
#: work units a single run mints.
WORK_ID_STRIDE = 10 ** 9


def reset_work_ids() -> None:
    """Restart the work-id sequence (test isolation only)."""
    global _WORK_IDS
    _WORK_IDS = itertools.count(1)


def set_work_id_namespace(index: int) -> None:
    """Move this process's work-id sequence into a disjoint namespace.

    A multiprocess sharded run mints packages in every worker process;
    work ids arbitrate exactly-once execution globally (they key the
    step ledger), so each worker claims the half-open range
    ``[1 + index * WORK_ID_STRIDE, (index + 1) * WORK_ID_STRIDE)``
    instead of the shared in-process counter.
    """
    global _WORK_IDS
    _WORK_IDS = itertools.count(1 + index * WORK_ID_STRIDE)


class PackageKind(str, enum.Enum):
    """What the receiving node should do with the package."""

    STEP = "step"
    COMPENSATION = "compensation"
    SHADOW = "shadow"


class RollbackMode(str, enum.Enum):
    """Which rollback algorithm drives compensation packages."""

    BASIC = "basic"          # Figure 4
    OPTIMIZED = "optimized"  # Figure 5
    SAGA = "saga"            # baseline: restore full state image (ref [4])


class Protocol(str, enum.Enum):
    """Step-execution protocol family (ref [11])."""

    BASIC = "basic"
    FAULT_TOLERANT = "ft"


@dataclass
class AgentPackage:
    """One durable queue payload."""

    kind: PackageKind
    agent_id: str
    blob: bytes  # capture(agent)
    step_index: int
    log_blobs: tuple[bytes, ...] = ()  # one frame per log entry
    log_mode: str = LoggingMode.STATE.value
    # Packed savepoint index (sp_id -> position metadata + EOS total),
    # so the unpacked log answers savepoint queries in O(1) without
    # hydrating any entry frame.  None → rebuilt lazily on first query.
    log_index: Optional[tuple] = None
    # Total framed payload size; pack() fills it in O(1) from the log's
    # running size sum.  None → derived from the frames on demand.
    payload_bytes: Optional[int] = None
    sp_id: Optional[str] = None  # rollback target (compensation packages)
    mode: RollbackMode = RollbackMode.BASIC
    protocol: Protocol = Protocol.BASIC
    alternates: tuple[str, ...] = ()
    # Fault-tolerant protocol metadata (ref [11]):
    # ``work_id`` uniquely identifies one unit of work so primary and
    # promoted-shadow executions exclude each other through the step
    # ledger; ``primary`` names the node originally responsible;
    # ``promoted`` marks a shadow that took over.  ``primary_shard`` is
    # the placement of the primary in a sharded world — shadows carry
    # it so a cross-shard alternate knows which kernel's outage it is
    # watching for without a topology lookup (None when unsharded).
    work_id: int = field(default_factory=lambda: next(_WORK_IDS))
    primary: Optional[str] = None
    primary_shard: Optional[int] = None
    promoted: bool = False

    @classmethod
    def pack(cls, kind: PackageKind, agent: Any, log: RollbackLog,
             step_index: int, **meta: Any) -> "AgentPackage":
        """Capture ``agent`` and ``log`` into a package.

        The agent blob is always fresh (the agent mutates every step);
        the log frames come from the log's incrementally maintained
        frame list, so only entries never framed before are serialised.
        """
        blob = capture(agent)
        index_state = log.savepoint_index_state()
        return cls(kind=kind, agent_id=agent.agent_id,
                   blob=blob, step_index=step_index,
                   log_blobs=log.entry_blobs(), log_mode=log.mode.value,
                   log_index=index_state,
                   payload_bytes=(FRAME_PREFIX_BYTES + len(blob)
                                  + log.size_bytes()
                                  + savepoint_index_bytes(index_state)),
                   **meta)

    def unpack(self) -> tuple[Any, RollbackLog]:
        """Re-instantiate (agent, log) from the serialised frames.

        Hydration is lazy: only the agent blob is unpickled here.  The
        log adopts the entry frames (and the packed savepoint index)
        as-is and re-instantiates an entry the first time something
        reads it — rollback touches the tail, steps usually touch
        nothing, so a hop no longer pays O(log length) ``loads``.
        """
        agent = restore(self.blob)
        log = RollbackLog.from_blobs(self.log_mode, self.log_blobs,
                                     index_state=self.log_index)
        return agent, log

    @property
    def size_bytes(self) -> int:
        """Serialised payload size (the migration transfer cost).

        O(1) when packed via :meth:`pack`; otherwise summed from the
        already-serialised frame lengths — either way no pickling
        happens here, unlike the monolithic blob this replaced.
        """
        if self.payload_bytes is not None:
            return self.payload_bytes
        return (FRAME_PREFIX_BYTES + len(self.blob) + LOG_HEADER_BYTES
                + sum(FRAME_PREFIX_BYTES + len(b) for b in self.log_blobs)
                + savepoint_index_bytes(self.log_index))

    def as_kind(self, kind: PackageKind, **meta: Any) -> "AgentPackage":
        """Copy with a different kind (shadow promotion etc.)."""
        return replace(self, kind=kind, **meta)
