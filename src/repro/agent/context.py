"""The step context — the API surface agent steps program against.

One :class:`StepContext` is created per step-transaction attempt and
passed to the step method.  Through it the step:

* accesses local resources transactionally (:meth:`StepContext.resource`);
* registers compensating operations for everything it did
  (:meth:`log_resource_compensation`, :meth:`log_agent_compensation`,
  :meth:`log_mixed_compensation`) — these become the operation entries
  of Section 4.2;
* constitutes savepoints (:meth:`savepoint` — effective at the end of
  the step, per Section 2's "agent savepoints can only be constituted
  at the end of a step");
* steers control (:meth:`goto`, :meth:`finish`);
* initiates partial rollback (:meth:`rollback`) or a plain
  abort-and-restart (:meth:`abort_and_restart`).

:class:`WROView` is the facade handed to compensating operations: it
exposes only the weakly reversible objects, enforcing the rule that
compensation never touches strongly reversible objects (Section 4.3).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.errors import (
    NotCompensatable,
    RollbackRequest,
    StepAbortRequest,
    UsageError,
)
from repro.log.entries import (
    OperationEntry,
    OperationKind,
    Recoverability,
    SavepointEntry,
)
from repro.resources.base import ResourceView
from repro.storage.serialization import snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.agent import MobileAgent
    from repro.log.rollback_log import RollbackLog
    from repro.node.node import Node
    from repro.tx.manager import Transaction


class WROView:
    """Mutable mapping over the agent's weakly reversible objects only."""

    def __init__(self, agent: "MobileAgent"):
        self._wro = agent.wro

    def __getitem__(self, key: str) -> Any:
        return self._wro[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._wro[key] = value

    def __delitem__(self, key: str) -> None:
        del self._wro[key]

    def __contains__(self, key: str) -> bool:
        return key in self._wro

    def __iter__(self) -> Iterator[str]:
        return iter(self._wro)

    def get(self, key: str, default: Any = None) -> Any:
        return self._wro.get(key, default)

    def setdefault(self, key: str, default: Any) -> Any:
        return self._wro.setdefault(key, default)


class StepContext:
    """Per-step API: resources, compensation logging, control flow."""

    def __init__(self, node: "Node", agent: "MobileAgent",
                 log: "RollbackLog", tx: "Transaction", step_index: int):
        self._node = node
        self._agent = agent
        self._log = log
        self._tx = tx
        self._step_index = step_index
        self._rng: Optional[random.Random] = None
        # staged step-end effects
        self._sp_requests: list[tuple[str, bool]] = []  # (id, virtual)
        self._discards: list[str] = []
        self._truncate = False
        self._next: Optional[dict[str, str]] = None
        self._finish_result: Any = None
        self._finishing = False
        self._non_compensatable = False
        self._alternates: tuple[str, ...] = ()
        self._has_mixed = False
        self._recoverability = Recoverability.EXACT

    # -- ambient facts ------------------------------------------------------------

    @property
    def agent(self) -> "MobileAgent":
        return self._agent

    @property
    def node_name(self) -> str:
        """Name of the node executing this step."""
        return self._node.name

    @property
    def step_index(self) -> int:
        return self._step_index

    @property
    def now(self) -> float:
        """Current virtual time, including work already charged."""
        return self._node.sim.now + self._tx.cost

    @property
    def rng(self) -> random.Random:
        """Deterministic per-(agent, step) random stream.

        Derived from the kernel seed, the agent id and the step index,
        so a step retried after an abort draws the same values —
        deterministic replay.
        """
        if self._rng is None:
            self._rng = self._node.sim.fork_rng(
                f"step:{self._agent.agent_id}:{self._step_index}")
        return self._rng

    # -- resources --------------------------------------------------------------------

    def resource(self, name: str) -> ResourceView:
        """A local resource bound to the step transaction."""
        resource = self._node.get_resource(name)
        return ResourceView(resource, self._tx, self._node.timing,
                            compensating=False)

    # -- compensation logging ------------------------------------------------------------

    def log_resource_compensation(self, op_name: str,
                                  params: Optional[dict[str, Any]] = None,
                                  resource: Optional[str] = None) -> None:
        """Register an RCE: compensates resource state only.

        All information the operation needs must be in ``params``; it
        will execute on this node (where the resource lives) possibly
        *without* the agent (Section 4.4.1).
        """
        self._append_op(OperationKind.RESOURCE, op_name, params, resource)

    def log_agent_compensation(self, op_name: str,
                               params: Optional[dict[str, Any]] = None) -> None:
        """Register an ACE: compensates weakly reversible objects only."""
        self._append_op(OperationKind.AGENT, op_name, params, None)

    def log_mixed_compensation(self, op_name: str,
                               params: Optional[dict[str, Any]] = None,
                               resource: Optional[str] = None) -> None:
        """Register an MCE: needs agent WROs *and* this node's resource."""
        self._has_mixed = True
        self._append_op(OperationKind.MIXED, op_name, params, resource)

    def _append_op(self, kind: OperationKind, op_name: str,
                   params: Optional[dict[str, Any]],
                   resource: Optional[str]) -> None:
        registered = self._node.registry.resolve(op_name)  # fail fast
        if registered.kind is not kind:
            raise UsageError(
                f"{op_name!r} is registered as {registered.kind.value}, "
                f"not {kind.value}")
        if kind is not OperationKind.AGENT and resource is None:
            raise UsageError(
                f"{kind.value} entry {op_name!r} must name its resource")
        # Deep-freeze the parameters: the entry is serialised when it
        # enters the log, so later mutations of caller-owned values must
        # not leak into (or diverge from) the durable record.
        entry = OperationEntry(op_kind=kind, op_name=op_name,
                               params=snapshot(dict(params or {})),
                               node=self._node.name if kind is not
                               OperationKind.AGENT else None,
                               resource=resource)
        self._log.append(entry, self._tx)

    def mark_non_compensatable(self) -> None:
        """Declare this step impossible to compensate (Section 3.2).

        After this step commits, no rollback may cross it — any
        rollback request across it *fails* the agent.  For the softer
        variant where the driver routes around the step instead, see
        :meth:`annotate_recoverability`.
        """
        self._non_compensatable = True
        self._recoverability = Recoverability.UNRECOVERABLE

    def annotate_recoverability(self, level: str) -> None:
        """Annotate this step's recoverability level (DART-style).

        ``level`` is one of :data:`~repro.log.entries.Recoverability.ALL`:
        ``"exact"`` (the default — compensation restores the pre-step
        state), ``"semantic"`` (compensation restores an acceptable
        state: refund minus fees, un-reserve with penalty, cancel by
        notification) or ``"unrecoverable"`` (no compensation exists —
        a rollback crossing this step is *adjusted*: the driver
        ratchets the target up to the nearest savepoint above it).
        """
        if level not in Recoverability.ALL:
            raise UsageError(f"unknown recoverability level {level!r}")
        self._recoverability = level

    def declare_alternates(self, *nodes: str) -> None:
        """Name nodes able to run this step's compensation (FT rollback)."""
        self._alternates = tuple(nodes)

    # -- savepoints and log hygiene ----------------------------------------------------------

    def savepoint(self, sp_id: Optional[str] = None,
                  virtual: bool = False) -> str:
        """Constitute an agent savepoint at the end of this step.

        Returns the savepoint identifier.  ``virtual=True`` writes a
        data-less entry denoting the same state as the real savepoint
        below it (itinerary integration, Section 4.4.2).  Several
        savepoints may be requested in one step (entering nested
        sub-itineraries constitutes one per level); they are written in
        request order at step end.
        """
        sp_id = sp_id or SavepointEntry.fresh_id()
        self._sp_requests.append((sp_id, virtual))
        return sp_id

    def has_savepoint(self, sp_id: str) -> bool:
        """Whether SP(spID) currently exists in the rollback log."""
        return self._log.has_savepoint(sp_id)

    def discard_savepoint(self, sp_id: str) -> None:
        """Drop SP(spID) from the log at step end (sub-itinerary done)."""
        self._discards.append(sp_id)

    def truncate_log(self) -> None:
        """Drop the whole rollback log at step end (top-level task done)."""
        self._truncate = True

    # -- control flow -----------------------------------------------------------------------------

    def goto(self, node: str, method: str) -> None:
        """Execute ``method`` as the next step, on ``node``."""
        self._agent.step_method(method)  # validate early
        self._next = {"node": node, "method": method}

    def finish(self, result: Any = None) -> None:
        """Declare the agent's job complete after this step commits."""
        self._finishing = True
        self._finish_result = result

    def rollback(self, sp_id: str) -> None:
        """Initiate partial rollback to savepoint ``sp_id``.

        Aborts the current step transaction (undoing everything this
        step did) and starts the rollback mechanism.  Never returns.
        """
        if not self._log.has_savepoint(sp_id):
            raise UsageError(f"no savepoint {sp_id!r} in the rollback log")
        blocker = self._log.blocking_non_compensatable(sp_id)
        if blocker is not None:
            raise NotCompensatable(
                f"step {blocker.step_index} on {blocker.node} cannot be "
                f"compensated; rollback to {sp_id!r} impossible")
        if self._log.choose_rollback_point(sp_id) is None:
            raise NotCompensatable(
                f"an unrecoverable step blocks rollback to {sp_id!r} and "
                f"no savepoint lies above it")
        raise RollbackRequest(sp_id)

    def abort_and_restart(self) -> None:
        """Abort the step transaction and re-execute the step later."""
        raise StepAbortRequest()

    # -- step-end bookkeeping (runtime only) ------------------------------------------------------

    def staged_next(self) -> Optional[dict[str, str]]:
        return self._next

    def staged_finish(self) -> tuple[bool, Any]:
        return self._finishing, self._finish_result

    def staged_savepoints(self) -> list[tuple[str, bool]]:
        return list(self._sp_requests)

    def staged_discards(self) -> list[str]:
        return list(self._discards)

    def staged_truncate(self) -> bool:
        return self._truncate

    def step_flags(self) -> dict[str, Any]:
        return {
            "has_mixed": self._has_mixed,
            "non_compensatable": self._non_compensatable,
            "alternates": self._alternates,
            "recoverability": self._recoverability,
        }
