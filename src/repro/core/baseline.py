"""Saga-style baseline rollback (Garcia-Molina & Salem, ref [4]).

Sagas compensate committed steps on the *resources* but restore the
transaction program's execution state from a savepoint image.  Applied
to mobile agents this means: run the logged compensating operations,
then restore the **entire** private data space — strongly *and* weakly
reversible objects — from the savepoint's before-image.

The paper argues (Sections 3.2 and 4.1) that this is wrong for mobile
agents: rollback produces genuinely new information that must be
integrated into the private agent data — refunded digital coins carry
*different serial numbers*, refunds may be reduced by fees or arrive as
credit notes.  Restoring the WRO image silently discards that
information: the agent ends up holding coins whose serials the mint has
retired (double-spend on next use) and loses any credit notes it
received.

This driver exists so the benchmark suite can measure exactly that
failure mode against the paper's mechanism
(``benchmarks/bench_baselines.py``).  Its savepoints are also larger:
they carry the WRO image on top of the SRO image.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.agent.agent import MobileAgent
from repro.agent.packages import RollbackMode
from repro.core.rollback import BasicRollback
from repro.log.rollback_log import RollbackLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class SagaRollback(BasicRollback):
    """Baseline: compensate resources, image-restore the whole agent."""

    mode = RollbackMode.SAGA

    def _restore_at_savepoint(self, agent: MobileAgent, log: RollbackLog,
                              sp_id: str) -> None:
        agent.sro = log.reconstruct_sro(sp_id)
        wro_image = log.reconstruct_wro(sp_id)
        if wro_image is not None:
            # Clobber whatever the compensating operations produced —
            # the incorrectness under measurement.
            agent.wro = wro_image
            self.world.metrics.incr("saga.wro_image_restored")
