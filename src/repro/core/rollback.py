"""The rollback mechanism (paper, Section 4.3, Figures 4a/4b).

Rollback drives the agent back along the path of the steps being rolled
back.  The two driver entry points mirror the paper's two code figures:

* :meth:`RollbackDriverBase.start_rollback` — Figure 4a, executed on
  the node where the rollback was initiated, right after the aborting
  step transaction's abort.  Reads the (pre-step) agent and log back
  from stable storage inside a fresh transaction; if the target
  savepoint sits directly before the aborted step the rollback is
  already finished, otherwise the "(spID, agent, LOG)" package is
  written to the input queue of the node that must run the first
  compensation transaction.
* :meth:`RollbackDriverBase.execute_compensation` — Figure 4b, executed
  on each node along the way: pop the (non-target) savepoint entry if
  present, pop the end-of-step entry, execute operation entries in
  reverse order until the begin-of-step entry, then either restore the
  strongly reversible objects (target savepoint reached — *without*
  deleting the savepoint entry) and start the next step transaction, or
  forward the package to the next compensation node.

Failure handling is the paper's: if any of these transactions aborts
(crash, deadlock, unreachable successor), the package still resides in
the node's durable input queue and the transaction is simply retried —
for the very first transaction that means the aborted *step* re-runs
and re-initiates the rollback, which the paper explicitly blesses as
"still a correct execution".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.agent.agent import MobileAgent
from repro.agent.context import WROView
from repro.agent.packages import (
    AgentPackage,
    PackageKind,
    Protocol,
    RollbackMode,
)
from repro.compensation.registry import CompensationContext
from repro.errors import (
    CompensationFailed,
    LockConflict,
    LogCorrupt,
    NodeDown,
    UsageError,
)
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    OperationEntry,
    OperationKind,
    Recoverability,
    SavepointEntry,
)
from repro.log.rollback_log import RollbackLog
from repro.node.execution import abort_and_count, finalize
from repro.node.runtime import AgentStatus
from repro.storage.queues import QueueItem
from repro.storage.serialization import snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node
    from repro.node.runtime import World
    from repro.tx.manager import Transaction


class RollbackDriverBase:
    """Shared skeleton of the basic and optimized rollback algorithms."""

    mode = RollbackMode.BASIC

    def __init__(self, world: "World"):
        self.world = world

    # ------------------------------------------------------------------
    # Figure 4a / 5a — start of the rollback, on the initiating node
    # ------------------------------------------------------------------

    def start_rollback(self, node: "Node", item: QueueItem,
                       sp_id: str) -> None:
        """Begin the rollback to ``sp_id`` after the step abort."""
        world = self.world
        package: AgentPackage = item.payload
        record = world.record_or_none(package.agent_id)
        if record is None or record.status is not AgentStatus.RUNNING:
            world.step_protocol._consume(node, item, "stale-agent")
            return

        tx = node.txm.begin("rollback-start")
        tx.charge(world.timing.tx_begin)
        tx.charge(world.timing.stable_read(item.size_bytes))
        node.queue.dequeue(tx, item.item_id)
        agent, log = package.unpack()
        tx.charge(world.timing.serialize(package.size_bytes))

        if not log.has_savepoint(sp_id):
            abort_and_count(node, tx, "rollback-bad-target")
            world.agent_failed(package.agent_id,
                               f"no savepoint {sp_id!r} in rollback log")
            world.step_protocol._consume(node, item, "rollback-bad-target")
            return
        blocker = log.blocking_non_compensatable(sp_id)
        if blocker is not None:
            abort_and_count(node, tx, "rollback-blocked")
            world.agent_failed(
                package.agent_id,
                f"non-compensatable step {blocker.step_index} blocks "
                f"rollback to {sp_id!r}")
            world.step_protocol._consume(node, item, "rollback-blocked")
            return

        # Consult the per-step recoverability annotations: a rollback
        # crossing an unrecoverable step is not failed (that is the
        # hard non-compensatable stop above) but *adjusted* — the
        # effective target ratchets up to the nearest savepoint above
        # the newest unrecoverable step on the path.
        effective = log.choose_rollback_point(sp_id)
        if effective is None:
            abort_and_count(node, tx, "rollback-unrecoverable")
            world.agent_failed(
                package.agent_id,
                f"an unrecoverable step blocks rollback to {sp_id!r} "
                f"and no savepoint lies above it")
            world.step_protocol._consume(node, item, "rollback-unrecoverable")
            return
        if effective != sp_id:
            requested = sp_id
            sp_id = effective

            def _adjusted() -> None:
                world.metrics.incr("rollback.adjusted")
                world.metrics.record(node.sim.now, "rollback-adjusted",
                                     agent=package.agent_id,
                                     requested=requested,
                                     savepoint=effective, node=node.name)

            tx.register_commit(_adjusted)

        if log.savepoint_reached(sp_id):
            # The savepoint was set directly before the aborting step
            # transaction: the rollback is already finished; initiate
            # the next step transaction.
            self._enqueue_step(node, tx, agent, log, package)

            def _done_trivially() -> None:
                record.rollbacks_completed += 1
                world.metrics.incr("rollback.completed")
                world.metrics.incr("rollback.completed_trivially")
                world.metrics.record(node.sim.now, "rollback-completed",
                                     agent=agent.agent_id, savepoint=sp_id,
                                     node=node.name, trivial=True)

            finalize(node, tx, on_committed=_done_trivially,
                     label="rollback-start")
            return

        dest = self._start_destination(node, log)
        self._enqueue_compensation(node, tx, agent, log, package, sp_id,
                                   dest, record)
        finalize(node, tx, label="rollback-start")

    # ------------------------------------------------------------------
    # Figure 4b / 5b — one compensation transaction per node
    # ------------------------------------------------------------------

    def execute_compensation(self, node: "Node", item: QueueItem) -> None:
        """Run one compensation-transaction attempt for ``item``."""
        world = self.world
        package: AgentPackage = item.payload
        sp_id = package.sp_id
        record = world.record_or_none(package.agent_id)
        if record is None or record.status is not AgentStatus.RUNNING:
            world.step_protocol._consume(node, item, "stale-agent")
            return

        tx = node.txm.begin("compensation")
        tx.charge(world.timing.tx_begin)
        tx.charge(world.timing.stable_read(item.size_bytes))
        node.queue.dequeue(tx, item.item_id)

        if package.protocol is Protocol.FAULT_TOLERANT:
            try:
                outcome = world.ft.claim(tx, package.work_id, node.name)
            except LockConflict:
                # A concurrent claimant (primary vs promoted shadow)
                # holds the claim key on a shared ledger replica; abort
                # and let the queue-driven retry re-read the ledger.
                abort_and_count(node, tx, "claim-conflict")
                return
            if outcome == "stale":
                world.metrics.incr("ft.stale_discarded")
                finalize(node, tx, label="discard-stale")
                return

        agent, log = package.unpack()
        tx.charge(world.timing.serialize(package.size_bytes))
        world.metrics.incr("compensation.tx_attempted")

        try:
            # Remove savepoints passed over on the way down; they cannot
            # be the target (checked before the package was written).
            while (isinstance(log.last(), SavepointEntry)
                    and not log.savepoint_reached(sp_id)):
                log.pop(tx)
            eos = log.pop(tx)
            if not isinstance(eos, EndOfStepEntry):
                raise LogCorrupt(f"expected EOS, found {eos!r}")
            if (getattr(eos, "recoverability", Recoverability.EXACT)
                    == Recoverability.SEMANTIC):
                tx.register_commit(
                    lambda: world.metrics.incr("compensation.semantic_steps"))
            self._compensate_step(node, tx, agent, log, eos)
        except LogCorrupt as exc:
            abort_and_count(node, tx, "log-corrupt")
            world.agent_failed(package.agent_id, f"rollback log corrupt: {exc}")
            world.step_protocol._consume(node, item, "log-corrupt")
            return
        except CompensationFailed as exc:
            abort_and_count(node, tx, "compensation-failed")
            world.metrics.incr("compensation.op_failures")
            policy = world.retry_policy
            if (policy.max_attempts is not None
                    and item.attempts + 1 >= policy.max_attempts):
                world.agent_failed(
                    package.agent_id,
                    f"compensation permanently failing: {exc}")
                world.step_protocol._consume(node, item,
                                             "compensation-failed")
            return
        except LockConflict:
            abort_and_count(node, tx, "lock-conflict")
            return
        except NodeDown:
            abort_and_count(node, tx, "dest-unreachable")
            return

        if log.savepoint_reached(sp_id):
            # Restore the strongly reversible objects from the savepoint
            # entry (without deleting it) and initiate the next step.
            self._restore_at_savepoint(agent, log, sp_id)
            self._enqueue_step(node, tx, agent, log, package)

            def _rolled_back() -> None:
                record.compensation_txs += 1
                record.rollbacks_completed += 1
                world.metrics.incr("compensation.tx_committed")
                world.metrics.incr("rollback.completed")
                world.metrics.record(node.sim.now, "rollback-completed",
                                     agent=agent.agent_id, savepoint=sp_id,
                                     node=node.name, trivial=False)

            finalize(node, tx, on_committed=_rolled_back,
                     label="compensation")
            return

        dest = self._next_destination(node, log)
        self._enqueue_compensation(node, tx, agent, log, package, sp_id,
                                   dest, record)

        def _compensated() -> None:
            record.compensation_txs += 1
            world.metrics.incr("compensation.tx_committed")

        finalize(node, tx, on_committed=_compensated, label="compensation")

    # ------------------------------------------------------------------
    # strategy points (basic vs optimized)
    # ------------------------------------------------------------------

    def _start_destination(self, node: "Node", log: RollbackLog) -> str:
        """Where the first compensation transaction runs (Fig 4a)."""
        eos = log.last_end_of_step()
        if eos is None:
            raise LogCorrupt("rollback started but log has no EOS entry")
        return eos.node

    def _next_destination(self, node: "Node", log: RollbackLog) -> str:
        """Where the next compensation transaction runs (Fig 4b)."""
        eos = log.last_end_of_step()
        if eos is None:
            raise LogCorrupt("compensation continues but log has no EOS")
        return eos.node

    def _compensate_step(self, node: "Node", tx: "Transaction",
                         agent: MobileAgent, log: RollbackLog,
                         eos: EndOfStepEntry) -> None:
        """Execute all operation entries of one step, newest first."""
        entry = log.pop(tx)
        while not isinstance(entry, BeginOfStepEntry):
            if not isinstance(entry, OperationEntry):
                raise LogCorrupt(f"unexpected entry in step frame: {entry!r}")
            self.execute_entry(node, tx, agent, entry)
            entry = log.pop(tx)

    def _restore_at_savepoint(self, agent: MobileAgent, log: RollbackLog,
                              sp_id: str) -> None:
        """Restore agent state once the target savepoint is reached.

        The paper's mechanism restores *only* the strongly reversible
        objects; weakly reversible objects keep whatever the
        compensating operations produced.  The saga baseline overrides
        this to restore everything from the image.
        """
        agent.sro = log.reconstruct_sro(sp_id)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def execute_entry(self, node: "Node", tx: "Transaction",
                      agent: Optional[MobileAgent], entry: OperationEntry,
                      resource_node: Optional["Node"] = None) -> None:
        """Run one compensating operation with exactly the allowed views.

        ``resource_node`` overrides where resource state is looked up
        (the optimized driver executes shipped RCEs against the remote
        node's resources while the transaction is coordinated from the
        agent's node).
        """
        from repro.resources.base import ResourceView  # local to avoid cycle

        world = self.world
        op = world.registry.resolve(entry.op_name)
        if op.kind is not entry.op_kind:
            raise UsageError(
                f"operation {entry.op_name!r} registered as "
                f"{op.kind.value} but logged as {entry.op_kind.value}")
        host = resource_node if resource_node is not None else node
        ctx = CompensationContext(now=node.sim.now + tx.cost, node=host.name)
        tx.charge(world.timing.compensation_op)
        # Hand the operation a copy: the entry's params are durable log
        # state (already serialised into the entry's cached frame), so a
        # param-mutating compensation must not desynchronise the live
        # entry from its frame across an abort/retry.
        params = snapshot(entry.params)
        if op.kind is OperationKind.RESOURCE:
            view = ResourceView(host.get_resource(entry.resource), tx,
                                world.timing, compensating=True)
            op.fn(view, params, ctx)
        elif op.kind is OperationKind.AGENT:
            if agent is None:
                raise UsageError("agent compensation entry without agent")
            op.fn(WROView(agent), params, ctx)
        else:
            if agent is None:
                raise UsageError("mixed compensation entry without agent")
            view = ResourceView(host.get_resource(entry.resource), tx,
                                world.timing, compensating=True)
            op.fn(WROView(agent), view, params, ctx)
        world.metrics.incr("compensation.ops_executed")
        world.metrics.incr(f"compensation.ops.{entry.op_kind.value}")

    def _enqueue_step(self, node: "Node", tx: "Transaction",
                      agent: MobileAgent, log: RollbackLog,
                      package: AgentPackage) -> None:
        """Initiate the next step transaction (possibly on another node)."""
        world = self.world
        control = agent.control
        if control is None:
            raise LogCorrupt("restored agent has no control record")
        # The resume step may divert around an unreachable destination
        # under the FT protocol (shared with the forward step path).
        dest, promoted = world.step_protocol.resolve_step_destination(
            node, control["node"], package.protocol)
        new_package = AgentPackage.pack(
            PackageKind.STEP, agent, log, step_index=agent.step_count,
            mode=package.mode, protocol=package.protocol,
            primary=dest, promoted=promoted)
        world.step_protocol.ship(node, tx, new_package, dest)
        if dest != node.name:
            self._count_transfer(tx, package.agent_id, new_package,
                                 kind="resume")

    def _enqueue_compensation(self, node: "Node", tx: "Transaction",
                              agent: MobileAgent, log: RollbackLog,
                              package: AgentPackage, sp_id: str,
                              dest: str, record) -> None:
        """Write "(spID, agent, LOG)" to the input queue of ``dest``."""
        world = self.world
        next_eos = log.last_end_of_step()
        alternates = next_eos.alternates if next_eos is not None else ()
        if (package.protocol is Protocol.FAULT_TOLERANT
                and not world.reachable(node.name, dest)):
            # Fault-tolerant rollback: divert to an alternate node able
            # to run the compensation (Section 4.3, discussion).
            for alt in alternates:
                if alt != dest and world.reachable(node.name, alt):
                    world.metrics.incr("ft.compensation_diverted")
                    dest = alt
                    break
        new_package = AgentPackage.pack(
            PackageKind.COMPENSATION, agent, log,
            step_index=agent.step_count, sp_id=sp_id, mode=package.mode,
            protocol=package.protocol, alternates=tuple(alternates),
            primary=dest)
        world.step_protocol.ship(node, tx, new_package, dest)
        if dest != node.name:
            self._count_transfer(tx, package.agent_id, new_package,
                                 kind="compensation")

    def _count_transfer(self, tx: "Transaction", agent_id: str,
                        package: AgentPackage, kind: str) -> None:
        world = self.world

        def _on_commit() -> None:
            record = world.record_of(agent_id)
            record.agent_transfers += 1
            record.transfer_bytes += package.size_bytes
            world.metrics.incr(f"agent.transfers.{kind}")
            world.metrics.add_bytes(f"agent.transfers.{kind}",
                                    package.size_bytes)

        tx.register_commit(_on_commit)


class BasicRollback(RollbackDriverBase):
    """Figure 4: the agent always travels to the node being compensated."""

    mode = RollbackMode.BASIC
