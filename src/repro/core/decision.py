"""RPC-vs-migration decision model (Straßer & Schwehm, ref [16]).

The paper (end of Section 4.4.1): "if the access to resources within
the mixed compensation entries and the resource compensation entries
may be performed using RPC [...] a performance model similar to that
introduced in [16] can be used to determine if the agent or the
resource compensation objects should be transferred to the node where
the resources reside or if RPC should be used to access the resources."

The model compares the expected network cost of the two strategies for
one compensation (or step) against a resource on another node:

* **RPC** — ``r`` request/reply rounds, each moving ``b_req`` up and
  ``b_rep`` down over a link with latency ``L`` and throughput ``B``;
* **Migration** — move the agent (state + code + rollback log,
  ``b_agent`` bytes) there and, when execution must continue
  elsewhere, onwards; local interactions are then free.

This mirrors [16]'s communication model (they additionally fold in
code caching and selective state transfer; our ``b_agent`` parameter
is whatever the caller decides must move, so both refinements can be
expressed through it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.timing import NetworkParams


class AccessPlan(enum.Enum):
    """The strategy the model recommends."""

    RPC = "rpc"
    MIGRATE = "migrate"


@dataclass(frozen=True)
class DecisionModel:
    """Cost model for remote-resource access during (compensation) work.

    Parameters mirror [16]: per-interaction request/reply sizes, the
    number of interactions, agent transfer size, and network
    characteristics.
    """

    network: NetworkParams = NetworkParams()
    rpc_overhead: float = 0.001   # server-side handling per interaction
    migration_overhead: float = 0.004  # capture/re-instantiate + queue I/O

    def rpc_cost(self, interactions: int, request_bytes: int,
                 reply_bytes: int) -> float:
        """Total time for ``interactions`` request/reply rounds."""
        round_cost = (self.network.transfer_time(request_bytes)
                      + self.network.transfer_time(reply_bytes)
                      + self.rpc_overhead)
        return interactions * round_cost

    def migration_cost(self, agent_bytes: int,
                       round_trip: bool = True) -> float:
        """Time to move the agent there (and back when ``round_trip``)."""
        legs = 2 if round_trip else 1
        return legs * (self.network.transfer_time(agent_bytes)
                       + self.migration_overhead)

    def choose(self, interactions: int, request_bytes: int,
               reply_bytes: int, agent_bytes: int,
               round_trip: bool = True) -> AccessPlan:
        """Pick the cheaper strategy for the given interaction profile."""
        rpc = self.rpc_cost(interactions, request_bytes, reply_bytes)
        migrate = self.migration_cost(agent_bytes, round_trip)
        return AccessPlan.RPC if rpc <= migrate else AccessPlan.MIGRATE

    def crossover_interactions(self, request_bytes: int, reply_bytes: int,
                               agent_bytes: int,
                               round_trip: bool = True) -> float:
        """Interaction count above which migration wins.

        The break-even point of [16]'s comparison: RPC cost grows
        linearly with the number of interactions while migration cost is
        flat, so the crossover is their ratio.
        """
        per_round = (self.network.transfer_time(request_bytes)
                     + self.network.transfer_time(reply_bytes)
                     + self.rpc_overhead)
        return self.migration_cost(agent_bytes, round_trip) / per_round
