"""The paper's contribution: partial rollback of mobile agent execution.

* :class:`~repro.core.rollback.BasicRollback` — Figure 4: the agent
  travels back along its path; every step's compensating operations run
  on the node that executed the step, inside a compensation
  transaction; strongly reversible objects are restored only when the
  target savepoint is reached.
* :class:`~repro.core.optimized.OptimizedRollback` — Figure 5: the
  agent moves only for steps containing a *mixed* compensation entry;
  otherwise resource compensation entries are shipped to the resource
  node and executed concurrently with the local agent compensation
  entries inside one distributed compensation transaction.
* :mod:`repro.core.decision` — the RPC-vs-migration performance model
  (ref [16]) the paper suggests for deciding whether to move the agent
  or access resources remotely.
"""

from repro.core.rollback import BasicRollback, RollbackDriverBase
from repro.core.optimized import OptimizedRollback
from repro.core.baseline import SagaRollback
from repro.core.decision import AccessPlan, DecisionModel
from repro.core.inspector import (
    RollbackPrediction,
    StepPlan,
    format_log,
    predict_rollback,
)

__all__ = [
    "RollbackDriverBase",
    "BasicRollback",
    "OptimizedRollback",
    "SagaRollback",
    "DecisionModel",
    "AccessPlan",
    "format_log",
    "predict_rollback",
    "RollbackPrediction",
    "StepPlan",
]
