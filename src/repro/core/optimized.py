"""The optimized rollback algorithm (paper, Section 4.4.1, Figure 5).

Two changes against the basic mechanism, both keyed on the operation
entry types:

* **Transfer avoidance** — the agent is written to the input queue of
  the *step's* node only when that step's end-of-step entry carries the
  mixed-compensation flag; otherwise the package stays on the current
  node ("write (spID, agent, LOG) to input queue of current node").
* **Split execution** — for a step without mixed entries, the popped
  operation entries are partitioned into the agent compensation list
  (executed where the agent is) and the resource compensation list
  (shipped, with the transaction identifier, to the resource node and
  executed there inside the same distributed compensation transaction).
  The two lists touch disjoint data by construction, so they execute
  concurrently; the transaction commits only after the resource node's
  acknowledgement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.agent.agent import MobileAgent
from repro.agent.packages import RollbackMode
from repro.core.rollback import RollbackDriverBase
from repro.errors import LogCorrupt, NodeDown
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    OperationEntry,
    OperationKind,
)
from repro.log.rollback_log import FRAME_PREFIX_BYTES, RollbackLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node
    from repro.tx.manager import Transaction

ACK_BYTES = 64


class OptimizedRollback(RollbackDriverBase):
    """Figure 5: move the agent only for mixed compensation entries."""

    mode = RollbackMode.OPTIMIZED

    # -- destination choice (Figures 5a / 5b tail) ---------------------------------

    def _stay_or_travel(self, node: "Node", eos: EndOfStepEntry) -> str:
        """Transfer avoidance, bounded by split-execution feasibility.

        Mixed entries always force the agent to the step's node.  Clear
        steps normally stay put and ship the RCE list — but shipping
        executes the entries against the resource node *inside this
        kernel*, so when that node lives in another shard (sharded
        multi-world runs) the agent travels instead, exactly like the
        basic mechanism.
        """
        if eos.has_mixed:
            return eos.node
        if eos.node != node.name and eos.node not in self.world.nodes:
            return eos.node
        return node.name

    def _start_destination(self, node: "Node", log: RollbackLog) -> str:
        eos = log.last_end_of_step()
        if eos is None:
            raise LogCorrupt("rollback started but log has no EOS entry")
        return self._stay_or_travel(node, eos)

    def _next_destination(self, node: "Node", log: RollbackLog) -> str:
        eos = log.last_end_of_step()
        if eos is None:
            raise LogCorrupt("compensation continues but log has no EOS")
        return self._stay_or_travel(node, eos)

    # -- split execution (Figure 5b body) -----------------------------------------------

    def _compensate_step(self, node: "Node", tx: "Transaction",
                         agent: MobileAgent, log: RollbackLog,
                         eos: EndOfStepEntry) -> None:
        ops: list[OperationEntry] = []
        entry = log.pop(tx)
        while not isinstance(entry, BeginOfStepEntry):
            if not isinstance(entry, OperationEntry):
                raise LogCorrupt(f"unexpected entry in step frame: {entry!r}")
            ops.append(entry)  # pop order == execution order
            entry = log.pop(tx)

        if eos.has_mixed or eos.node == node.name:
            # Execution on the agent's node: everything runs locally, in
            # the order defined by the rollback log.
            for op in ops:
                self.execute_entry(node, tx, agent, op)
            return

        # Group operation entries (Figure 5b): ACE list runs here, RCE
        # list ships to the resource node; they operate on disjoint data
        # and therefore execute concurrently.
        world = self.world
        ace_list = [op for op in ops if op.op_kind is OperationKind.AGENT]
        rce_list = [op for op in ops if op.op_kind is OperationKind.RESOURCE]
        if len(ace_list) + len(rce_list) != len(ops):  # pragma: no cover
            raise LogCorrupt("mixed entry present despite clear EOS flag")

        base_cost = tx.cost
        remote_delta = 0.0
        if rce_list:
            resource_node = world.node(eos.node)
            if not world.reachable(node.name, eos.node):
                raise NodeDown(eos.node)
            world.enlist_participant(tx, eos.node)
            # Ship the already-framed entry blobs: no re-pickling, and
            # the byte count matches the framed wire format.
            rce_bytes = sum(FRAME_PREFIX_BYTES + op.blob_size()
                            for op in rce_list)
            world.metrics.incr("net.messages.rce-list")
            world.metrics.add_bytes("net.rce-list", rce_bytes)
            world.metrics.incr("net.messages.rce-ack")
            world.metrics.add_bytes("net.rce-ack", ACK_BYTES)
            tx.charge(world.transport.transfer_time(rce_bytes))
            tx.charge(world.timing.rpc_request_fixed)
            for op in rce_list:
                self.execute_entry(node, tx, None, op,
                                   resource_node=resource_node)
            tx.charge(world.transport.transfer_time(ACK_BYTES))
            remote_delta = tx.cost - base_cost
            tx.cost = base_cost

        for op in ace_list:
            self.execute_entry(node, tx, agent, op)
        local_delta = tx.cost - base_cost
        # The two legs overlap; the compensation transaction commits
        # after both finished (the ACK wait).
        tx.cost = base_cost + max(remote_delta, local_delta)
        if rce_list:
            world.metrics.observe("rollback.concurrency_saving",
                                  node.sim.now,
                                  remote_delta + local_delta - tx.cost
                                  + base_cost)
