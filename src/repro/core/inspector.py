"""Rollback log inspection and static rollback-cost prediction.

Two tools a platform operator (or the agent programmer) would want:

* :func:`format_log` — human-readable rendering of a rollback log;
* :func:`predict_rollback` — given a log, a target savepoint, the
  agent's current node and a mechanism, compute the *exact* cost the
  rollback will incur before running it: compensation transactions,
  agent transfers, shipped RCE lists, and per-step execution sites.

The prediction is the paper's Section 4.4.1 analysis, mechanised: the
basic mechanism transfers the agent to every step's node (even when
nothing needs compensating there — the "second problem" of §4.3); the
optimized mechanism transfers only for steps whose end-of-step entry
carries the mixed flag and ships resource compensation entries for the
rest.  The benchmarks validate prediction == measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agent.packages import RollbackMode
from repro.errors import UsageError
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    OperationEntry,
    OperationKind,
    SavepointEntry,
)
from repro.log.rollback_log import RollbackLog


def format_log(log: RollbackLog) -> str:
    """Render a rollback log, oldest entry first."""
    lines = []
    for i, entry in enumerate(log.entries()):
        if isinstance(entry, SavepointEntry):
            flavour = "virtual" if entry.virtual else entry.mode
            lines.append(f"{i:3d}  SP   {entry.sp_id} ({flavour})")
        elif isinstance(entry, BeginOfStepEntry):
            lines.append(f"{i:3d}  BOS  step {entry.step_index} @ "
                         f"{entry.node}")
        elif isinstance(entry, OperationEntry):
            lines.append(f"{i:3d}  OE   [{entry.op_kind.value}] "
                         f"{entry.op_name} {entry.params!r}")
        elif isinstance(entry, EndOfStepEntry):
            flags = []
            if entry.has_mixed:
                flags.append("mixed")
            if entry.non_compensatable:
                flags.append("non-compensatable")
            if entry.alternates:
                flags.append(f"alt={','.join(entry.alternates)}")
            suffix = f" ({', '.join(flags)})" if flags else ""
            lines.append(f"{i:3d}  EOS  step {entry.step_index} @ "
                         f"{entry.node}{suffix}")
    return "\n".join(lines)


@dataclass
class StepPlan:
    """Predicted handling of one rolled-back step."""

    step_index: int
    step_node: str
    agent_travels: bool
    execution_site: str
    rce_entries: int
    ace_entries: int
    mce_entries: int


@dataclass
class RollbackPrediction:
    """Predicted cost of a rollback before it runs."""

    mode: RollbackMode
    target: str
    steps: list[StepPlan] = field(default_factory=list)

    @property
    def compensation_txs(self) -> int:
        return len(self.steps)

    @property
    def agent_transfers(self) -> int:
        return sum(1 for s in self.steps if s.agent_travels)

    @property
    def rce_ships(self) -> int:
        return sum(1 for s in self.steps
                   if s.rce_entries and not s.agent_travels
                   and s.execution_site != s.step_node)

    @property
    def operations(self) -> int:
        return sum(s.rce_entries + s.ace_entries + s.mce_entries
                   for s in self.steps)


def predict_rollback(log: RollbackLog, sp_id: str, current_node: str,
                     mode: RollbackMode) -> RollbackPrediction:
    """Statically compute what a rollback to ``sp_id`` will do.

    Walks the log backwards exactly like the drivers, without touching
    it.  ``current_node`` is where the rollback initiates (the agent's
    position).  Saga mode moves like the basic mechanism.
    """
    if not log.has_savepoint(sp_id):
        raise UsageError(f"no savepoint {sp_id!r} in log")
    mode = RollbackMode(mode)
    prediction = RollbackPrediction(mode=mode, target=sp_id)
    entries = log.entries()
    # Find the target savepoint from the end.
    index = len(entries) - 1
    agent_at = current_node
    while index >= 0:
        entry = entries[index]
        if isinstance(entry, SavepointEntry) and entry.sp_id == sp_id:
            break
        if isinstance(entry, EndOfStepEntry):
            # Collect this step's frame.
            frame_end = index
            frame_start = frame_end
            while not isinstance(entries[frame_start], BeginOfStepEntry):
                frame_start -= 1
            ops = [e for e in entries[frame_start:frame_end]
                   if isinstance(e, OperationEntry)]
            rce = sum(1 for o in ops
                      if o.op_kind is OperationKind.RESOURCE)
            ace = sum(1 for o in ops if o.op_kind is OperationKind.AGENT)
            mce = sum(1 for o in ops if o.op_kind is OperationKind.MIXED)
            if mode is RollbackMode.OPTIMIZED:
                travels = entry.has_mixed and entry.node != agent_at
                site = entry.node if entry.has_mixed else agent_at
            else:
                travels = entry.node != agent_at
                site = entry.node
            prediction.steps.append(StepPlan(
                step_index=entry.step_index, step_node=entry.node,
                agent_travels=travels, execution_site=site,
                rce_entries=rce, ace_entries=ace, mce_entries=mce))
            agent_at = site
            index = frame_start
        index -= 1
    return prediction
