"""Run-invariant checker.

Validates a finished (or still-running) world against the protocol
invariants the paper states, using only externally observable evidence:
the metrics timeline, the counters, and the durable structures.  Tests
and the soak suite run it after scenarios; it is also handy when
developing new drivers ("did my change silently break reverse
ordering?").

Checked invariants:

* **rollback pairing** — every completed rollback was initiated; no
  agent completes more rollbacks than it initiated;
* **agent terminality** — finished/failed agents have no package left
  in any queue and hold no locks;
* **transaction hygiene** — no active transactions after quiescence;
  commits + aborts == begun for every node;
* **compensation accounting** — compensation transactions only exist
  for agents that initiated rollbacks;
* **queue/lock residue** — empty queues and released locks once every
  agent reached a terminal state.

Returns a list of violation strings (empty == clean) rather than
raising, so callers can assert or report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.node.runtime import AgentStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.runtime import World


def check_world(world: "World") -> list[str]:
    """Run every invariant check; returns human-readable violations."""
    violations: list[str] = []
    violations.extend(_check_rollback_pairing(world))
    violations.extend(_check_terminal_agents(world))
    violations.extend(_check_tx_hygiene(world))
    return violations


def _check_rollback_pairing(world: "World") -> list[str]:
    out = []
    initiated: dict[str, int] = {}
    completed: dict[str, int] = {}
    last_initiation: dict[str, float] = {}
    for time, kind, details in world.metrics.timeline:
        agent = details.get("agent")
        if kind == "rollback-initiated":
            initiated[agent] = initiated.get(agent, 0) + 1
            last_initiation[agent] = time
        elif kind == "rollback-completed":
            completed[agent] = completed.get(agent, 0) + 1
            if agent not in initiated:
                out.append(f"{agent}: rollback completed but never "
                           "initiated")
            elif time < last_initiation.get(agent, 0.0):
                out.append(f"{agent}: rollback completed at {time} before "
                           f"initiation at {last_initiation[agent]}")
    for agent, count in completed.items():
        if count > initiated.get(agent, 0):
            out.append(f"{agent}: {count} completions > "
                       f"{initiated.get(agent, 0)} initiations")
    for agent_id, record in world.agents.items():
        if record.rollbacks_completed != completed.get(agent_id, 0):
            out.append(
                f"{agent_id}: record says {record.rollbacks_completed} "
                f"rollbacks, timeline says {completed.get(agent_id, 0)}")
    return out


def _check_terminal_agents(world: "World") -> list[str]:
    out = []
    terminal = {agent_id for agent_id, record in world.agents.items()
                if record.status is not AgentStatus.RUNNING}
    for name, node in world.nodes.items():
        for item in node.queue.items():
            package = item.payload
            agent_id = getattr(package, "agent_id", None)
            kind = getattr(package, "kind", None)
            if agent_id in terminal and getattr(kind, "value", "") != \
                    "shadow":
                out.append(f"{name}: queue still holds {kind} package of "
                           f"terminal agent {agent_id}")
    return out


def _check_tx_hygiene(world: "World") -> list[str]:
    out = []
    quiesced = all(record.status is not AgentStatus.RUNNING
                   for record in world.agents.values())
    for name, node in world.nodes.items():
        if quiesced and node.txm.active:
            out.append(f"{name}: {len(node.txm.active)} transactions "
                       "still active after quiescence")
        for resource in set(node.resources.values()):
            if quiesced and resource.locks.held_count():
                out.append(f"{name}/{resource.name}: "
                           f"{resource.locks.held_count()} locks held "
                           "after quiescence")
    for agent_id, record in world.agents.items():
        if record.compensation_txs and not record.rollbacks_initiated:
            out.append(f"{agent_id}: compensation transactions without "
                       "any rollback initiation")
    return out


def assert_clean(world: "World") -> None:
    """Raise ``AssertionError`` listing violations, if any."""
    violations = check_world(world)
    assert not violations, "\n".join(violations)
