"""The agent rollback log object (paper, Section 4.2 and Figure 2).

A stack-like sequence of entries: appended at step execution time,
popped from the end during rollback (``LOG.pop()`` in Figures 4b/5b).
The log is part of the agent package written to durable input queues, so
it becomes persistent exactly when step/compensation transactions
commit — "this log is made persistent at transaction commit".

Mutating operations accept an optional transaction and register undos,
because log manipulation during rollback happens *inside* compensation
transactions: when one aborts (crash, deadlock), the popped entries must
still be in the log for the retry.

Serialisation is **incremental**: alongside ``_entries`` the log keeps
``_frames`` — the serialised form of each entry, one blob per entry —
and ``_payload_bytes``, the running sum of the frame lengths.  Every
mutation (append, pop, truncate, discard, and all their transactional
undos) maintains both, so

* :meth:`entry_blobs` (the migration payload) serialises only entries
  the log has never framed before — an n-step tour does O(n) total
  pickling instead of the O(n²) a re-pickle per hop would cost, and
* :meth:`size_bytes` is O(1) instead of a full re-pickle per query.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.errors import LogCorrupt, UsageError
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    EntryKind,
    LogEntry,
    OperationEntry,
    SavepointEntry,
)
from repro.log.modes import LoggingMode, SRODiff, sro_apply, sro_compose
from repro.storage import serialization
from repro.storage.serialization import restore, snapshot
from repro.tx.manager import Transaction

#: Fixed framing overhead of a serialised log: mode tag + entry count.
LOG_HEADER_BYTES = 8
#: Per-entry length prefix in the framed representation.
FRAME_PREFIX_BYTES = 4


class RollbackLog:
    """Append/pop log of SP, BOS, OE and EOS entries."""

    def __init__(self, mode: LoggingMode = LoggingMode.STATE):
        self.mode = LoggingMode(mode)
        self._entries: list[LogEntry] = []
        self._frames: list[bytes] = []  # serialised form, one per entry
        self._payload_bytes = 0         # == sum(len(f) for f in _frames)

    # -- incremental framing ------------------------------------------------------

    @classmethod
    def from_blobs(cls, mode: LoggingMode | str,
                   blobs: tuple[bytes, ...]) -> "RollbackLog":
        """Rebuild a log from per-entry blobs (the package unpack path).

        Each restored entry adopts its source blob as its cached
        serialised form, so re-packing an unchanged entry never pickles
        it again — only entries appended after the unpack are new work.
        """
        log = cls(LoggingMode(mode))
        for blob in blobs:
            entry = restore(blob)
            entry.seed_blob(blob)
            log._entries.append(entry)
            log._frames.append(blob)
            log._payload_bytes += len(blob)
        return log

    def entry_blobs(self) -> tuple[bytes, ...]:
        """Per-entry serialised frames, oldest first.

        O(n) pointer copy; no pickling happens here — frames are
        maintained incrementally by the mutating operations.
        """
        serialization.STATS["entry_blob_reused"] += len(self._frames)
        return tuple(self._frames)

    def payload_bytes(self) -> int:
        """Serialised size of the entry frames alone (no framing)."""
        return self._payload_bytes

    def __getstate__(self) -> dict[str, Any]:
        """Pickle without the frame cache (it is derived state).

        Wholesale log pickling is not the migration path (packages ship
        per-entry frames), but when it happens — stable-store dumps,
        debugging — the bytes must describe the log once, not entries
        plus their cached serialisations.
        """
        state = dict(self.__dict__)
        state.pop("_frames", None)
        state.pop("_payload_bytes", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._frames = [entry.blob() for entry in self._entries]
        self._payload_bytes = sum(len(f) for f in self._frames)

    # -- basic structure ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entries(self) -> list[LogEntry]:
        """Snapshot of the entries, oldest first."""
        return list(self._entries)

    def last(self) -> Optional[LogEntry]:
        """The newest entry (None when empty)."""
        return self._entries[-1] if self._entries else None

    def append(self, entry: LogEntry,
               tx: Optional[Transaction] = None) -> None:
        """Append ``entry`` (undone if ``tx`` aborts).

        The entry is serialised here, once — every later pack, shadow
        copy and size query reuses the frame.
        """
        frame = entry.blob()
        self._entries.append(entry)
        self._frames.append(frame)
        self._payload_bytes += len(frame)
        if tx is not None:
            def _undo() -> None:
                for i in range(len(self._entries) - 1, -1, -1):
                    if self._entries[i] is entry:
                        del self._entries[i]
                        self._payload_bytes -= len(self._frames[i])
                        del self._frames[i]
                        return
            tx.register_undo(_undo)

    def pop(self, tx: Optional[Transaction] = None) -> LogEntry:
        """Read and remove the newest entry (restored if ``tx`` aborts)."""
        if not self._entries:
            raise LogCorrupt("pop on empty rollback log")
        entry = self._entries.pop()
        frame = self._frames.pop()
        self._payload_bytes -= len(frame)

        if tx is not None:
            def _undo() -> None:
                self._entries.append(entry)
                self._frames.append(frame)
                self._payload_bytes += len(frame)
            tx.register_undo(_undo)
        return entry

    def size_bytes(self) -> int:
        """Serialised size of the whole log (migration payload share).

        O(1): framing header plus the maintained running sum of the
        entry frames and their length prefixes.
        """
        return (LOG_HEADER_BYTES + self._payload_bytes
                + FRAME_PREFIX_BYTES * len(self._entries))

    # -- savepoint queries ------------------------------------------------------------

    def savepoint_reached(self, sp_id: str) -> bool:
        """Figure 4's "savepoint spID reached": newest entry is SP(spID)."""
        last = self.last()
        return isinstance(last, SavepointEntry) and last.sp_id == sp_id

    def has_savepoint(self, sp_id: str) -> bool:
        """Whether SP(spID) exists anywhere in the log."""
        return any(isinstance(e, SavepointEntry) and e.sp_id == sp_id
                   for e in self._entries)

    def savepoint_ids(self) -> list[str]:
        """All savepoint identifiers, oldest first."""
        return [e.sp_id for e in self._entries
                if isinstance(e, SavepointEntry)]

    def last_end_of_step(self) -> Optional[EndOfStepEntry]:
        """The last EOS entry, skipping trailing savepoint entries.

        Figure 4a: the node of the next compensation transaction "can be
        determined by examining the last end-of-step entry contained in
        the agent rollback log (which is the last entry if no savepoint
        entry has been written after the last end-of-step entry)".
        """
        for entry in reversed(self._entries):
            if isinstance(entry, EndOfStepEntry):
                return entry
            if not isinstance(entry, SavepointEntry):
                return None
        return None

    def steps_to_rollback(self, sp_id: str) -> int:
        """Committed steps that must be compensated to reach SP(spID)."""
        count = 0
        for entry in reversed(self._entries):
            if isinstance(entry, SavepointEntry) and entry.sp_id == sp_id:
                return count
            if isinstance(entry, EndOfStepEntry):
                count += 1
        raise UsageError(f"no savepoint {sp_id!r} in log")

    def blocking_non_compensatable(self, sp_id: str) -> Optional[EndOfStepEntry]:
        """First non-compensatable step between the end and SP(spID), if any."""
        for entry in reversed(self._entries):
            if isinstance(entry, SavepointEntry) and entry.sp_id == sp_id:
                return None
            if isinstance(entry, EndOfStepEntry) and entry.non_compensatable:
                return entry
        return None

    # -- SRO restoration ------------------------------------------------------------------

    def reconstruct_sro(self, sp_id: str) -> dict[str, Any]:
        """SRO state recorded at savepoint ``sp_id``.

        State logging reads the image directly.  Transition logging folds
        the oldest (full-image) savepoint with every diff up to the
        target.  Virtual savepoints denote the state of the nearest real
        savepoint below them.
        """
        target = None
        for index, entry in enumerate(self._entries):
            if isinstance(entry, SavepointEntry) and entry.sp_id == sp_id:
                target = index
                break
        if target is None:
            raise UsageError(f"no savepoint {sp_id!r} in log")
        entry = self._entries[target]
        if entry.virtual:
            # Same agent state as the nearest real savepoint below.
            for index in range(target - 1, -1, -1):
                below = self._entries[index]
                if isinstance(below, SavepointEntry) and not below.virtual:
                    return self.reconstruct_sro(below.sp_id)
            raise LogCorrupt(
                f"virtual savepoint {sp_id!r} has no real savepoint below")
        if self.mode is LoggingMode.STATE:
            return snapshot(entry.payload)
        state: Optional[dict[str, Any]] = None
        for candidate in self._entries[:target + 1]:
            if not isinstance(candidate, SavepointEntry) or candidate.virtual:
                continue
            if isinstance(candidate.payload, SRODiff):
                if state is None:
                    raise LogCorrupt(
                        "transition log starts with a diff savepoint")
                state = sro_apply(state, candidate.payload)
            else:
                state = snapshot(candidate.payload)
        assert state is not None
        return state

    def reconstruct_wro(self, sp_id: str) -> Optional[dict[str, Any]]:
        """WRO image stored at SP(spID), if any (saga baseline only).

        The paper's mechanism never images weakly reversible objects;
        this accessor exists for the saga-style baseline (ref [4]) so
        benches can demonstrate the resulting incorrectness.
        """
        for entry in self._entries:
            if isinstance(entry, SavepointEntry) and entry.sp_id == sp_id:
                if entry.wro_payload is None:
                    return None
                return snapshot(entry.wro_payload)
        raise UsageError(f"no savepoint {sp_id!r} in log")

    # -- itinerary integration (Section 4.4.2) -----------------------------------------------

    def discard_savepoint(self, sp_id: str,
                          tx: Optional[Transaction] = None) -> bool:
        """Remove SP(spID) once its sub-itinerary completed.

        Operation entries stay (they are still needed to roll back the
        *enclosing* sub-itinerary).  Under transition logging the
        discarded savepoint's diff is composed into the next real
        savepoint above it so later reconstructions still work — the
        paper's "non-trivial task if transition logging is used".
        Returns False when the savepoint is absent (already discarded by
        an earlier, crashed-and-retried completion).
        """
        index = None
        for i, entry in enumerate(self._entries):
            if isinstance(entry, SavepointEntry) and entry.sp_id == sp_id:
                index = i
                break
        if index is None:
            return False
        entry = self._entries[index]
        restore_fns: list[Callable[[], None]] = []
        if (self.mode is LoggingMode.TRANSITION and not entry.virtual
                and isinstance(entry.payload, SRODiff)):
            above = self._first_real_savepoint_after(index)
            if above is not None:
                if isinstance(above.payload, SRODiff):
                    old_payload = above.payload
                    self._mutate_payload(
                        above, sro_compose(entry.payload, above.payload))
                    restore_fns.append(
                        lambda a=above, p=old_payload:
                        self._mutate_payload(a, p))
                # A full image above needs no merge.
        elif (self.mode is LoggingMode.TRANSITION and not entry.virtual
                and not isinstance(entry.payload, SRODiff)):
            # Discarding the base image: promote the next diff savepoint
            # to a full image so the chain stays rooted.
            above = self._first_real_savepoint_after(index)
            if above is not None and isinstance(above.payload, SRODiff):
                old_payload = above.payload
                self._mutate_payload(
                    above, sro_apply(entry.payload, above.payload))
                restore_fns.append(
                    lambda a=above, p=old_payload:
                    self._mutate_payload(a, p))
        frame = self._frames[index]
        del self._entries[index]
        del self._frames[index]
        self._payload_bytes -= len(frame)
        if tx is not None:
            def _undo(e: LogEntry = entry, f: bytes = frame,
                      i: int = index) -> None:
                self._entries.insert(i, e)
                self._frames.insert(i, f)
                self._payload_bytes += len(f)
                for fn in restore_fns:
                    fn()
            tx.register_undo(_undo)
        return True

    def _mutate_payload(self, entry: SavepointEntry, payload: Any) -> None:
        """Replace ``entry.payload`` in place, keeping frame/size honest.

        The only sanctioned in-place entry mutation: savepoint-diff
        composition during :meth:`discard_savepoint` (and its undo).
        """
        for i in range(len(self._entries) - 1, -1, -1):
            if self._entries[i] is entry:
                entry.payload = payload
                entry.invalidate_blob()
                frame = entry.blob()
                self._payload_bytes += len(frame) - len(self._frames[i])
                self._frames[i] = frame
                return
        raise LogCorrupt("payload mutation of an entry not in the log")

    def _first_real_savepoint_after(self, index: int) -> Optional[SavepointEntry]:
        for entry in self._entries[index + 1:]:
            if isinstance(entry, SavepointEntry) and not entry.virtual:
                return entry
        return None

    def truncate(self, tx: Optional[Transaction] = None) -> int:
        """Discard the whole log (top-level sub-itinerary completed).

        Returns the number of entries dropped.
        """
        dropped = self._entries
        dropped_frames = self._frames
        dropped_bytes = self._payload_bytes
        count = len(dropped)
        self._entries = []
        self._frames = []
        self._payload_bytes = 0
        if tx is not None:
            def _undo() -> None:
                self._entries = dropped
                self._frames = dropped_frames
                self._payload_bytes = dropped_bytes
            tx.register_undo(_undo)
        return count

    # -- integrity -----------------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`LogCorrupt` if broken.

        * BOS/EOS strictly alternate and agree on node and step index;
        * operation entries only appear inside a BOS/EOS frame;
        * savepoint entries never appear inside a BOS/EOS frame
          ("a savepoint can only be written after the execution of a
          step ... no savepoint entries can be found between a BOS entry
          and an EOS entry");
        * the EOS mixed flag matches the presence of MCE entries;
        * the incremental frame/size accounting matches the entries.
        """
        if len(self._frames) != len(self._entries):
            raise LogCorrupt(
                f"size accounting drift: {len(self._frames)} frames for "
                f"{len(self._entries)} entries")
        actual = sum(len(frame) for frame in self._frames)
        if actual != self._payload_bytes:
            raise LogCorrupt(
                f"size accounting drift: cached {self._payload_bytes}, "
                f"actual {actual}")
        open_bos: Optional[BeginOfStepEntry] = None
        saw_mixed = False
        for entry in self._entries:
            if isinstance(entry, BeginOfStepEntry):
                if open_bos is not None:
                    raise LogCorrupt("nested BOS")
                open_bos = entry
                saw_mixed = False
            elif isinstance(entry, EndOfStepEntry):
                if open_bos is None:
                    raise LogCorrupt("EOS without BOS")
                if (entry.node != open_bos.node
                        or entry.step_index != open_bos.step_index):
                    raise LogCorrupt("EOS does not match BOS")
                if entry.has_mixed != saw_mixed:
                    raise LogCorrupt("EOS mixed flag inconsistent")
                open_bos = None
            elif isinstance(entry, OperationEntry):
                if open_bos is None:
                    raise LogCorrupt("operation entry outside a step frame")
                if entry.op_kind.value == "MCE":
                    saw_mixed = True
            elif isinstance(entry, SavepointEntry):
                if open_bos is not None:
                    raise LogCorrupt("savepoint inside a step frame")
            else:  # pragma: no cover - defensive
                raise LogCorrupt(f"unknown entry {entry!r}")
        if open_bos is not None:
            raise LogCorrupt("log ends inside an open step frame")
