"""The agent rollback log object (paper, Section 4.2 and Figure 2).

A stack-like sequence of entries: appended at step execution time,
popped from the end during rollback (``LOG.pop()`` in Figures 4b/5b).
The log is part of the agent package written to durable input queues, so
it becomes persistent exactly when step/compensation transactions
commit — "this log is made persistent at transaction commit".

Mutating operations accept an optional transaction and register undos,
because log manipulation during rollback happens *inside* compensation
transactions: when one aborts (crash, deadlock), the popped entries must
still be in the log for the retry.

Serialisation is **incremental**: alongside ``_entries`` the log keeps
``_frames`` — the serialised form of each entry, one blob per entry —
and ``_payload_bytes``, the running sum of the frame lengths.  Every
mutation (append, pop, truncate, discard, and all their transactional
undos) maintains both, so

* :meth:`entry_blobs` (the migration payload) serialises only entries
  the log has never framed before — an n-step tour does O(n) total
  pickling instead of the O(n²) a re-pickle per hop would cost, and
* :meth:`size_bytes` is O(1) instead of a full re-pickle per query.

Hydration is **lazy**: a log rebuilt from frames
(:meth:`from_blobs`, the package unpack path) keeps the frames as-is
and re-instantiates an entry only when something actually reads it.  A
plain step touches none of the shipped entries (it only appends), and a
rollback touches the tail, so per-hop unpickling is O(entries read)
instead of O(n).

Savepoint queries are **indexed**: the log maintains
``sp_id → (position, EOS count below, virtual)`` plus a running EOS
total, so :meth:`has_savepoint`, :meth:`steps_to_rollback` and the
target lookups of :meth:`reconstruct_sro` / :meth:`discard_savepoint`
are O(1) instead of scanning the entry list.  Tail mutations maintain
the index incrementally; the rare mid-list surgery
(:meth:`discard_savepoint`) marks it dirty for an O(n) rebuild on the
next savepoint query.  The index travels with agent packages
(:meth:`savepoint_index_state`), so an unpacked log answers savepoint
queries without hydrating a single entry.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.errors import LogCorrupt, UsageError
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    LogEntry,
    OperationEntry,
    Recoverability,
    SavepointEntry,
)
from repro.log.modes import LoggingMode, SRODiff, sro_apply, sro_compose
from repro.storage import serialization
from repro.storage.serialization import restore, snapshot
from repro.tx.manager import Transaction

#: Fixed framing overhead of a serialised log: mode tag + entry count.
LOG_HEADER_BYTES = 8
#: Per-entry length prefix in the framed representation.
FRAME_PREFIX_BYTES = 4
#: Fixed framing overhead of a packed savepoint index (entry count +
#: EOS total).
SP_INDEX_HEADER_BYTES = 8
#: Per-savepoint fixed cost in the packed index: id length prefix,
#: position, EOS count, virtual flag.
SP_INDEX_ENTRY_BYTES = 13


def savepoint_index_bytes(index_state: Optional[tuple]) -> int:
    """Wire size of a packed savepoint index (see
    :meth:`RollbackLog.savepoint_index_state`).

    The index rides inside every agent package, so its bytes are part
    of the honest migration payload, charged by
    :meth:`~repro.agent.packages.AgentPackage.pack`.
    """
    if index_state is None:
        return 0
    sp_items, _eos_total = index_state
    return SP_INDEX_HEADER_BYTES + sum(
        SP_INDEX_ENTRY_BYTES + len(sp_id.encode("utf-8"))
        for sp_id, _pos, _eos, _virtual in sp_items)


class RollbackLog:
    """Append/pop log of SP, BOS, OE and EOS entries."""

    def __init__(self, mode: LoggingMode = LoggingMode.STATE):
        self.mode = LoggingMode(mode)
        # _entries[i] is None while entry i is an unhydrated frame.
        self._entries: list[Optional[LogEntry]] = []
        self._frames: list[bytes] = []  # serialised form, one per entry
        self._payload_bytes = 0         # == sum(len(f) for f in _frames)
        # sp_id -> (position of first occurrence, EOS entries below it,
        # virtual flag); _eos_count is the running EOS total.  Dirty
        # after mid-list surgery; rebuilt on the next savepoint query.
        self._sp_index: dict[str, tuple[int, int, bool]] = {}
        self._eos_count = 0
        self._index_dirty = False

    # -- incremental framing ------------------------------------------------------

    @classmethod
    def from_blobs(cls, mode: LoggingMode | str, blobs: tuple[bytes, ...],
                   index_state: Optional[tuple] = None) -> "RollbackLog":
        """Rebuild a log from per-entry blobs (the package unpack path).

        Entries are *not* unpickled here: each frame is adopted as-is
        and hydrated on first read (rollback touches the tail, steps
        usually touch nothing), so re-packing an unchanged entry never
        pickles it again and unpacking never pays O(n) ``loads``.

        ``index_state`` is the packed savepoint index
        (:meth:`savepoint_index_state`): with it, savepoint queries on
        the rebuilt log stay O(1) and hydration-free; without it the
        index is rebuilt (hydrating every entry) on the first savepoint
        query.
        """
        log = cls(LoggingMode(mode))
        log._entries = [None] * len(blobs)
        log._frames = list(blobs)
        log._payload_bytes = sum(len(blob) for blob in blobs)
        serialization.STATS["entry_hydration_deferred"] += len(blobs)
        if index_state is not None:
            sp_items, eos_count = index_state
            log._sp_index = {sp_id: (pos, eos_at, virtual)
                             for sp_id, pos, eos_at, virtual in sp_items}
            log._eos_count = eos_count
        else:
            log._index_dirty = True
        return log

    def savepoint_index_state(self) -> tuple:
        """The savepoint index in packable form (rides with packages).

        A pair ``((sp_id, position, eos_below, virtual), ...), eos_total``
        — positions stay valid across pack/unpack because the frame
        order is preserved verbatim.
        """
        self._ensure_index()
        return (tuple((sp_id, pos, eos_at, virtual)
                      for sp_id, (pos, eos_at, virtual)
                      in self._sp_index.items()),
                self._eos_count)

    def entry_blobs(self) -> tuple[bytes, ...]:
        """Per-entry serialised frames, oldest first.

        O(n) pointer copy; no pickling happens here — frames are
        maintained incrementally by the mutating operations.
        """
        serialization.STATS["entry_blob_reused"] += len(self._frames)
        return tuple(self._frames)

    def payload_bytes(self) -> int:
        """Serialised size of the entry frames alone (no framing)."""
        return self._payload_bytes

    def _entry_at(self, index: int) -> LogEntry:
        """Entry ``index``, hydrating it from its frame on first read."""
        entry = self._entries[index]
        if entry is None:
            frame = self._frames[index]
            entry = restore(frame)
            entry.seed_blob(frame)
            self._entries[index] = entry
            serialization.STATS["entry_hydrated"] += 1
        return entry

    def _hydrate_all(self) -> None:
        for index in range(len(self._entries)):
            self._entry_at(index)

    def __getstate__(self) -> dict[str, Any]:
        """Pickle without the frame cache (it is derived state).

        Wholesale log pickling is not the migration path (packages ship
        per-entry frames), but when it happens — stable-store dumps,
        debugging — the bytes must describe the log once, not entries
        plus their cached serialisations.  Hydrates everything first;
        the savepoint index is derived state too and is rebuilt on load.
        """
        self._hydrate_all()
        state = dict(self.__dict__)
        for derived in ("_frames", "_payload_bytes", "_sp_index",
                        "_eos_count", "_index_dirty"):
            state.pop(derived, None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._frames = [entry.blob() for entry in self._entries]
        self._payload_bytes = sum(len(f) for f in self._frames)
        self._sp_index = {}
        self._eos_count = 0
        self._index_dirty = True

    # -- savepoint index maintenance ----------------------------------------------

    def _ensure_index(self) -> None:
        """Rebuild the savepoint index if mid-list surgery dirtied it."""
        if not self._index_dirty:
            return
        self._sp_index = {}
        eos = 0
        for position in range(len(self._entries)):
            entry = self._entry_at(position)
            if isinstance(entry, EndOfStepEntry):
                eos += 1
            elif (isinstance(entry, SavepointEntry)
                    and entry.sp_id not in self._sp_index):
                self._sp_index[entry.sp_id] = (position, eos, entry.virtual)
        self._eos_count = eos
        self._index_dirty = False

    def _index_note_append(self, entry: LogEntry, position: int) -> None:
        if self._index_dirty:
            return
        if isinstance(entry, EndOfStepEntry):
            self._eos_count += 1
        elif (isinstance(entry, SavepointEntry)
                and entry.sp_id not in self._sp_index):
            self._sp_index[entry.sp_id] = (position, self._eos_count,
                                           entry.virtual)

    def _index_note_remove(self, entry: LogEntry, position: int) -> None:
        if self._index_dirty:
            return
        if position != len(self._entries):
            # Removal below the tail shifts later positions; rebuild.
            self._index_dirty = True
            return
        if isinstance(entry, EndOfStepEntry):
            self._eos_count -= 1
        elif isinstance(entry, SavepointEntry):
            indexed = self._sp_index.get(entry.sp_id)
            if indexed is not None and indexed[0] == position:
                del self._sp_index[entry.sp_id]

    # -- basic structure ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries())

    def entries(self) -> list[LogEntry]:
        """Snapshot of the entries, oldest first (hydrates everything)."""
        self._hydrate_all()
        return list(self._entries)

    def last(self) -> Optional[LogEntry]:
        """The newest entry (None when empty)."""
        if not self._entries:
            return None
        return self._entry_at(len(self._entries) - 1)

    def append(self, entry: LogEntry,
               tx: Optional[Transaction] = None) -> None:
        """Append ``entry`` (undone if ``tx`` aborts).

        The entry is serialised here, once — every later pack, shadow
        copy and size query reuses the frame.
        """
        frame = entry.blob()
        self._entries.append(entry)
        self._frames.append(frame)
        self._payload_bytes += len(frame)
        self._index_note_append(entry, len(self._entries) - 1)
        if tx is not None:
            def _undo() -> None:
                for i in range(len(self._entries) - 1, -1, -1):
                    if self._entries[i] is entry:
                        del self._entries[i]
                        self._payload_bytes -= len(self._frames[i])
                        del self._frames[i]
                        self._index_note_remove(entry, i)
                        return
            tx.register_undo(_undo)

    def pop(self, tx: Optional[Transaction] = None) -> LogEntry:
        """Read and remove the newest entry (restored if ``tx`` aborts)."""
        if not self._entries:
            raise LogCorrupt("pop on empty rollback log")
        entry = self._entry_at(len(self._entries) - 1)
        self._entries.pop()
        frame = self._frames.pop()
        self._payload_bytes -= len(frame)
        self._index_note_remove(entry, len(self._entries))

        if tx is not None:
            def _undo() -> None:
                self._entries.append(entry)
                self._frames.append(frame)
                self._payload_bytes += len(frame)
                self._index_note_append(entry, len(self._entries) - 1)
            tx.register_undo(_undo)
        return entry

    def size_bytes(self) -> int:
        """Serialised size of the whole log (migration payload share).

        O(1): framing header plus the maintained running sum of the
        entry frames and their length prefixes.
        """
        return (LOG_HEADER_BYTES + self._payload_bytes
                + FRAME_PREFIX_BYTES * len(self._entries))

    # -- savepoint queries ------------------------------------------------------------

    def savepoint_reached(self, sp_id: str) -> bool:
        """Figure 4's "savepoint spID reached": newest entry is SP(spID)."""
        last = self.last()
        return isinstance(last, SavepointEntry) and last.sp_id == sp_id

    def has_savepoint(self, sp_id: str) -> bool:
        """Whether SP(spID) exists anywhere in the log.  O(1)."""
        self._ensure_index()
        return sp_id in self._sp_index

    def savepoint_ids(self) -> list[str]:
        """All savepoint identifiers, oldest first."""
        self._ensure_index()
        return [sp_id for sp_id, _info
                in sorted(self._sp_index.items(), key=lambda kv: kv[1][0])]

    def last_real_savepoint_id(self) -> Optional[str]:
        """The newest non-virtual savepoint's id (None when absent).

        O(#savepoints) via the index; used by transition logging to
        find the diff base without touching the entry list.
        """
        self._ensure_index()
        best: Optional[tuple[int, str]] = None
        for sp_id, (position, _eos, virtual) in self._sp_index.items():
            if virtual:
                continue
            if best is None or position > best[0]:
                best = (position, sp_id)
        return best[1] if best is not None else None

    def _sp_position(self, sp_id: str) -> Optional[int]:
        """Entry position of SP(spID)'s first occurrence, via the index."""
        self._ensure_index()
        info = self._sp_index.get(sp_id)
        return info[0] if info is not None else None

    def savepoint_sro_hashes(self, sp_id: str) -> Optional[dict]:
        """Per-key SRO content hashes recorded at SP(spID), if any.

        One entry read — the fast diff base for transition logging
        (:func:`~repro.log.modes.sro_diff_hashed`); ``None`` sends the
        writer down the reconstruct-and-compare fallback.
        """
        position = self._sp_position(sp_id)
        if position is None:
            raise UsageError(f"no savepoint {sp_id!r} in log")
        return self._entry_at(position).sro_hashes

    def last_end_of_step(self) -> Optional[EndOfStepEntry]:
        """The last EOS entry, skipping trailing savepoint entries.

        Figure 4a: the node of the next compensation transaction "can be
        determined by examining the last end-of-step entry contained in
        the agent rollback log (which is the last entry if no savepoint
        entry has been written after the last end-of-step entry)".
        """
        for position in range(len(self._entries) - 1, -1, -1):
            entry = self._entry_at(position)
            if isinstance(entry, EndOfStepEntry):
                return entry
            if not isinstance(entry, SavepointEntry):
                return None
        return None

    def steps_to_rollback(self, sp_id: str) -> int:
        """Committed steps to compensate to reach SP(spID).  O(1)."""
        self._ensure_index()
        info = self._sp_index.get(sp_id)
        if info is None:
            raise UsageError(f"no savepoint {sp_id!r} in log")
        _position, eos_below, _virtual = info
        return self._eos_count - eos_below

    def blocking_non_compensatable(self, sp_id: str) -> Optional[EndOfStepEntry]:
        """First non-compensatable step between the end and SP(spID), if any."""
        stop = self._sp_position(sp_id)
        floor = stop if stop is not None else -1
        for position in range(len(self._entries) - 1, floor, -1):
            entry = self._entry_at(position)
            if isinstance(entry, SavepointEntry) and entry.sp_id == sp_id:
                return None
            if isinstance(entry, EndOfStepEntry) and entry.non_compensatable:
                return entry
        return None

    def choose_rollback_point(self, sp_id: str) -> Optional[str]:
        """The deepest reachable target for a rollback request to ``sp_id``.

        Consults the per-step :class:`~repro.log.entries.Recoverability`
        annotations: walking from the newest entry down towards
        SP(spID), an EOS annotated ``unrecoverable`` stops the walk —
        the effective target becomes the nearest savepoint *above* that
        step (the last one seen on the way down), or ``None`` when no
        savepoint lies above it.  Returns ``sp_id`` itself when no
        unrecoverable step blocks the path.

        Steps marked ``non_compensatable`` are not handled here — they
        are a hard stop, checked separately via
        :meth:`blocking_non_compensatable` before this adjustment runs.
        """
        stop = self._sp_position(sp_id)
        if stop is None:
            raise UsageError(f"no savepoint {sp_id!r} in log")
        candidate: Optional[str] = None
        for position in range(len(self._entries) - 1, stop - 1, -1):
            entry = self._entry_at(position)
            if isinstance(entry, SavepointEntry):
                if position == stop:
                    return sp_id
                candidate = entry.sp_id
            elif (isinstance(entry, EndOfStepEntry)
                    and getattr(entry, "recoverability", Recoverability.EXACT)
                    == Recoverability.UNRECOVERABLE):
                return candidate
        return sp_id

    # -- SRO restoration ------------------------------------------------------------------

    def reconstruct_sro(self, sp_id: str) -> dict[str, Any]:
        """SRO state recorded at savepoint ``sp_id``.

        State logging reads the image directly (O(1) target lookup via
        the savepoint index).  Transition logging folds the oldest
        (full-image) savepoint with every diff up to the target.
        Virtual savepoints denote the state of the nearest real
        savepoint below them.
        """
        target = self._sp_position(sp_id)
        if target is None:
            raise UsageError(f"no savepoint {sp_id!r} in log")
        entry = self._entry_at(target)
        if entry.virtual:
            # Same agent state as the nearest real savepoint below.
            for index in range(target - 1, -1, -1):
                below = self._entry_at(index)
                if isinstance(below, SavepointEntry) and not below.virtual:
                    return self.reconstruct_sro(below.sp_id)
            raise LogCorrupt(
                f"virtual savepoint {sp_id!r} has no real savepoint below")
        if self.mode is LoggingMode.STATE:
            return snapshot(entry.payload)
        state: Optional[dict[str, Any]] = None
        for index in range(target + 1):
            candidate = self._entry_at(index)
            if not isinstance(candidate, SavepointEntry) or candidate.virtual:
                continue
            if isinstance(candidate.payload, SRODiff):
                if state is None:
                    raise LogCorrupt(
                        "transition log starts with a diff savepoint")
                state = sro_apply(state, candidate.payload)
            else:
                state = snapshot(candidate.payload)
        assert state is not None
        return state

    def reconstruct_wro(self, sp_id: str) -> Optional[dict[str, Any]]:
        """WRO image stored at SP(spID), if any (saga baseline only).

        The paper's mechanism never images weakly reversible objects;
        this accessor exists for the saga-style baseline (ref [4]) so
        benches can demonstrate the resulting incorrectness.
        """
        position = self._sp_position(sp_id)
        if position is None:
            raise UsageError(f"no savepoint {sp_id!r} in log")
        entry = self._entry_at(position)
        if entry.wro_payload is None:
            return None
        return snapshot(entry.wro_payload)

    # -- itinerary integration (Section 4.4.2) -----------------------------------------------

    def discard_savepoint(self, sp_id: str,
                          tx: Optional[Transaction] = None) -> bool:
        """Remove SP(spID) once its sub-itinerary completed.

        Operation entries stay (they are still needed to roll back the
        *enclosing* sub-itinerary).  Under transition logging the
        discarded savepoint's diff is composed into the next real
        savepoint above it so later reconstructions still work — the
        paper's "non-trivial task if transition logging is used".
        Returns False when the savepoint is absent (already discarded by
        an earlier, crashed-and-retried completion).

        Mid-list surgery: positions above the removed entry shift, so
        the savepoint index is marked dirty here (and by the undo) and
        rebuilt on the next savepoint query.
        """
        index = self._sp_position(sp_id)
        if index is None:
            return False
        entry = self._entry_at(index)
        restore_fns: list[Callable[[], None]] = []
        if (self.mode is LoggingMode.TRANSITION and not entry.virtual
                and isinstance(entry.payload, SRODiff)):
            above = self._first_real_savepoint_after(index)
            if above is not None:
                if isinstance(above.payload, SRODiff):
                    old_payload = above.payload
                    self._mutate_payload(
                        above, sro_compose(entry.payload, above.payload))
                    restore_fns.append(
                        lambda a=above, p=old_payload:
                        self._mutate_payload(a, p))
                # A full image above needs no merge.
        elif (self.mode is LoggingMode.TRANSITION and not entry.virtual
                and not isinstance(entry.payload, SRODiff)):
            # Discarding the base image: promote the next diff savepoint
            # to a full image so the chain stays rooted.
            above = self._first_real_savepoint_after(index)
            if above is not None and isinstance(above.payload, SRODiff):
                old_payload = above.payload
                self._mutate_payload(
                    above, sro_apply(entry.payload, above.payload))
                restore_fns.append(
                    lambda a=above, p=old_payload:
                    self._mutate_payload(a, p))
        frame = self._frames[index]
        del self._entries[index]
        del self._frames[index]
        self._payload_bytes -= len(frame)
        self._index_note_remove(entry, index)
        if tx is not None:
            def _undo(e: LogEntry = entry, f: bytes = frame,
                      i: int = index) -> None:
                self._entries.insert(i, e)
                self._frames.insert(i, f)
                self._payload_bytes += len(f)
                self._index_dirty = True
                for fn in restore_fns:
                    fn()
            tx.register_undo(_undo)
        return True

    def _mutate_payload(self, entry: SavepointEntry, payload: Any) -> None:
        """Replace ``entry.payload`` in place, keeping frame/size honest.

        The only sanctioned in-place entry mutation: savepoint-diff
        composition during :meth:`discard_savepoint` (and its undo).
        """
        for i in range(len(self._entries) - 1, -1, -1):
            if self._entries[i] is entry:
                entry.payload = payload
                entry.invalidate_blob()
                frame = entry.blob()
                self._payload_bytes += len(frame) - len(self._frames[i])
                self._frames[i] = frame
                return
        raise LogCorrupt("payload mutation of an entry not in the log")

    def _first_real_savepoint_after(self, index: int) -> Optional[SavepointEntry]:
        for position in range(index + 1, len(self._entries)):
            entry = self._entry_at(position)
            if isinstance(entry, SavepointEntry) and not entry.virtual:
                return entry
        return None

    def truncate(self, tx: Optional[Transaction] = None) -> int:
        """Discard the whole log (top-level sub-itinerary completed).

        Returns the number of entries dropped.
        """
        dropped = self._entries
        dropped_frames = self._frames
        dropped_bytes = self._payload_bytes
        dropped_index = (self._sp_index, self._eos_count, self._index_dirty)
        count = len(dropped)
        self._entries = []
        self._frames = []
        self._payload_bytes = 0
        self._sp_index = {}
        self._eos_count = 0
        self._index_dirty = False
        if tx is not None:
            def _undo() -> None:
                self._entries = dropped
                self._frames = dropped_frames
                self._payload_bytes = dropped_bytes
                (self._sp_index, self._eos_count,
                 self._index_dirty) = dropped_index
            tx.register_undo(_undo)
        return count

    # -- integrity -----------------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`LogCorrupt` if broken.

        * BOS/EOS strictly alternate and agree on node and step index;
        * operation entries only appear inside a BOS/EOS frame;
        * savepoint entries never appear inside a BOS/EOS frame
          ("a savepoint can only be written after the execution of a
          step ... no savepoint entries can be found between a BOS entry
          and an EOS entry");
        * the EOS mixed flag matches the presence of MCE entries;
        * the incremental frame/size accounting matches the entries;
        * the savepoint index agrees with the entry list.
        """
        if len(self._frames) != len(self._entries):
            raise LogCorrupt(
                f"size accounting drift: {len(self._frames)} frames for "
                f"{len(self._entries)} entries")
        actual = sum(len(frame) for frame in self._frames)
        if actual != self._payload_bytes:
            raise LogCorrupt(
                f"size accounting drift: cached {self._payload_bytes}, "
                f"actual {actual}")
        open_bos: Optional[BeginOfStepEntry] = None
        saw_mixed = False
        expected_index: dict[str, tuple[int, int, bool]] = {}
        eos_seen = 0
        for position in range(len(self._entries)):
            entry = self._entry_at(position)
            if isinstance(entry, BeginOfStepEntry):
                if open_bos is not None:
                    raise LogCorrupt("nested BOS")
                open_bos = entry
                saw_mixed = False
            elif isinstance(entry, EndOfStepEntry):
                if open_bos is None:
                    raise LogCorrupt("EOS without BOS")
                if (entry.node != open_bos.node
                        or entry.step_index != open_bos.step_index):
                    raise LogCorrupt("EOS does not match BOS")
                if entry.has_mixed != saw_mixed:
                    raise LogCorrupt("EOS mixed flag inconsistent")
                open_bos = None
                eos_seen += 1
            elif isinstance(entry, OperationEntry):
                if open_bos is None:
                    raise LogCorrupt("operation entry outside a step frame")
                if entry.op_kind.value == "MCE":
                    saw_mixed = True
            elif isinstance(entry, SavepointEntry):
                if open_bos is not None:
                    raise LogCorrupt("savepoint inside a step frame")
                if entry.sp_id not in expected_index:
                    expected_index[entry.sp_id] = (position, eos_seen,
                                                   entry.virtual)
            else:  # pragma: no cover - defensive
                raise LogCorrupt(f"unknown entry {entry!r}")
        if open_bos is not None:
            raise LogCorrupt("log ends inside an open step frame")
        if not self._index_dirty:
            if self._sp_index != expected_index or self._eos_count != eos_seen:
                raise LogCorrupt(
                    f"savepoint index drift: cached {self._sp_index} "
                    f"(eos={self._eos_count}), actual {expected_index} "
                    f"(eos={eos_seen})")
