"""State logging vs transition logging for strongly reversible objects.

Section 4.2: the SRO image in a savepoint entry is written "either by
writing a complete image of the objects into the log (state logging) or
by writing differences of the object states between adjacent savepoints
(transition logging)".

Under transition logging the first savepoint holds a full image and
every later savepoint holds the diff from the previous savepoint's SRO
state to its own.  Restoring savepoint *k* folds the image of the first
savepoint with the diffs up to *k* (the paper: "the state of the
strongly reversible objects has to be updated every time an agent
savepoint entry is read during the rollback process").  Discarding an
intermediate savepoint (itinerary integration, Section 4.4.2 — "may be
a non-trivial task if transition logging is used") composes its diff
into the next savepoint above it.

SRO spaces are flat mappings ``name -> picklable value``; diffs record
changed/added values (as deep snapshots) and removed keys.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.storage.serialization import capture, restore, snapshot


class LoggingMode(str, enum.Enum):
    """How savepoint entries encode SRO restore information."""

    STATE = "state"
    TRANSITION = "transition"


@dataclass
class SRODiff:
    """A reversible-description of ``old -> new`` for an SRO mapping."""

    changed: dict[str, Any] = field(default_factory=dict)
    removed: tuple[str, ...] = ()

    def is_empty(self) -> bool:
        return not self.changed and not self.removed


def sro_diff(old: dict[str, Any], new: dict[str, Any]) -> SRODiff:
    """Diff two SRO mappings (values compared by serialised form)."""
    changed = {}
    for key, value in new.items():
        if key in old:
            previous = old[key]
            # ``old`` is a reconstructed snapshot, so a shared identity
            # can only be an immutable interned value — unchanged.
            if previous is value or capture(previous) == capture(value):
                continue
        changed[key] = snapshot(value)
    removed = tuple(sorted(k for k in old if k not in new))
    return SRODiff(changed=changed, removed=removed)


def sro_value_hash(value: Any) -> bytes:
    """Content hash of one SRO value (over its serialised form)."""
    return hashlib.sha256(capture(value)).digest()


def sro_content_hashes(sro: dict[str, Any]) -> dict[str, bytes]:
    """Per-key content hashes of an SRO mapping.

    Stored on every real transition-mode savepoint entry so the *next*
    savepoint can diff against this one by comparing 32-byte digests —
    no reconstruction of the previous SRO state (which folds the whole
    diff chain) and no re-serialisation of its values.
    """
    return {key: sro_value_hash(value) for key, value in sro.items()}


def sro_diff_hashed(prev_hashes: dict[str, bytes], new: dict[str, Any]
                    ) -> tuple[SRODiff, dict[str, bytes]]:
    """Diff ``new`` against a previous savepoint known only by hashes.

    Returns ``(diff, new_hashes)``.  Each current value is serialised
    exactly once: the capture feeds the hash, and — only for keys whose
    digest differs from the previous savepoint's — a restore of those
    same bytes becomes the diff's deep snapshot (same no-aliasing
    guarantee as :func:`~repro.storage.serialization.snapshot`, without
    a second serialisation pass).  Unchanged keys cost one capture and
    a digest compare instead of the old reconstruct-and-compare walk.
    """
    changed: dict[str, Any] = {}
    hashes: dict[str, bytes] = {}
    for key, value in new.items():
        blob = capture(value)
        digest = hashlib.sha256(blob).digest()
        hashes[key] = digest
        if prev_hashes.get(key) != digest:
            changed[key] = restore(blob)
    removed = tuple(sorted(k for k in prev_hashes if k not in new))
    return SRODiff(changed=changed, removed=removed), hashes


def sro_image_hashed(sro: dict[str, Any]
                     ) -> tuple[dict[str, Any], dict[str, bytes]]:
    """A full deep image of ``sro`` plus its per-key content hashes.

    The transition chain's base savepoint: one capture per key serves
    both the hash and the restore that produces the aliasing-free
    image (per-key, matching how :func:`sro_apply` rebuilds state).
    """
    image: dict[str, Any] = {}
    hashes: dict[str, bytes] = {}
    for key, value in sro.items():
        blob = capture(value)
        hashes[key] = hashlib.sha256(blob).digest()
        image[key] = restore(blob)
    return image, hashes


def sro_apply(base: dict[str, Any], diff: SRODiff) -> dict[str, Any]:
    """Apply ``diff`` to ``base`` returning a new mapping."""
    out = {k: snapshot(v) for k, v in base.items() if k not in diff.removed}
    for key, value in diff.changed.items():
        out[key] = snapshot(value)
    return out


def sro_compose(first: SRODiff, second: SRODiff) -> SRODiff:
    """Compose diffs so ``apply(apply(x, first), second) == apply(x, composed)``."""
    changed = {k: snapshot(v) for k, v in first.changed.items()
               if k not in second.removed}
    for key, value in second.changed.items():
        changed[key] = snapshot(value)
    removed = set(first.removed) | set(second.removed)
    removed -= set(second.changed)
    return SRODiff(changed=changed, removed=tuple(sorted(removed)))
