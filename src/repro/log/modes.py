"""State logging vs transition logging for strongly reversible objects.

Section 4.2: the SRO image in a savepoint entry is written "either by
writing a complete image of the objects into the log (state logging) or
by writing differences of the object states between adjacent savepoints
(transition logging)".

Under transition logging the first savepoint holds a full image and
every later savepoint holds the diff from the previous savepoint's SRO
state to its own.  Restoring savepoint *k* folds the image of the first
savepoint with the diffs up to *k* (the paper: "the state of the
strongly reversible objects has to be updated every time an agent
savepoint entry is read during the rollback process").  Discarding an
intermediate savepoint (itinerary integration, Section 4.4.2 — "may be
a non-trivial task if transition logging is used") composes its diff
into the next savepoint above it.

SRO spaces are flat mappings ``name -> picklable value``; diffs record
changed/added values (as deep snapshots) and removed keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.storage.serialization import capture, snapshot


class LoggingMode(str, enum.Enum):
    """How savepoint entries encode SRO restore information."""

    STATE = "state"
    TRANSITION = "transition"


@dataclass
class SRODiff:
    """A reversible-description of ``old -> new`` for an SRO mapping."""

    changed: dict[str, Any] = field(default_factory=dict)
    removed: tuple[str, ...] = ()

    def is_empty(self) -> bool:
        return not self.changed and not self.removed


def sro_diff(old: dict[str, Any], new: dict[str, Any]) -> SRODiff:
    """Diff two SRO mappings (values compared by serialised form)."""
    changed = {}
    for key, value in new.items():
        if key in old:
            previous = old[key]
            # ``old`` is a reconstructed snapshot, so a shared identity
            # can only be an immutable interned value — unchanged.
            if previous is value or capture(previous) == capture(value):
                continue
        changed[key] = snapshot(value)
    removed = tuple(sorted(k for k in old if k not in new))
    return SRODiff(changed=changed, removed=removed)


def sro_apply(base: dict[str, Any], diff: SRODiff) -> dict[str, Any]:
    """Apply ``diff`` to ``base`` returning a new mapping."""
    out = {k: snapshot(v) for k, v in base.items() if k not in diff.removed}
    for key, value in diff.changed.items():
        out[key] = snapshot(value)
    return out


def sro_compose(first: SRODiff, second: SRODiff) -> SRODiff:
    """Compose diffs so ``apply(apply(x, first), second) == apply(x, composed)``."""
    changed = {k: snapshot(v) for k, v in first.changed.items()
               if k not in second.removed}
    for key, value in second.changed.items():
        changed[key] = snapshot(value)
    removed = set(first.removed) | set(second.removed)
    removed -= set(second.changed)
    return SRODiff(changed=changed, removed=tuple(sorted(removed)))
