"""Log entry types (paper, Section 4.2 and Figure 2).

Four entry families:

* :class:`SavepointEntry` (SP) — written when an agent savepoint is
  constituted; carries a unique identifier plus the information needed
  to restore the strongly reversible objects (a full image under state
  logging, a diff against the previous savepoint under transition
  logging).  A *virtual* savepoint carries no data and denotes the same
  agent state as the real savepoint immediately below it in the log
  (Section 4.4.2's "special savepoint entry ... without data").
* :class:`BeginOfStepEntry` (BOS) / :class:`EndOfStepEntry` (EOS) —
  frame one step; both carry the executing node.  The EOS additionally
  carries the step's mixed-compensation flag (optimized rollback reads
  just this entry to decide whether the agent must travel,
  Section 4.4.1) and alternate nodes able to run the compensation
  (fault-tolerant rollback, Section 4.3).
* :class:`OperationEntry` (OE) — one compensating operation: a code
  reference (registry name — the analogue of the serialized operation
  class the paper's platform would ship) plus its parameters, its kind
  (resource / agent / mixed) and, for resource access, the target node
  and resource name.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.storage import serialization

_SP_SEQ = itertools.count(1)


def reset_savepoint_ids() -> None:
    """Restart the savepoint id sequence (test isolation only)."""
    global _SP_SEQ
    _SP_SEQ = itertools.count(1)


def set_savepoint_id_namespace(index: int, stride: int = 10 ** 9) -> None:
    """Move this process's auto savepoint names into a disjoint range.

    Auto-generated savepoint ids must be unique *within one agent's
    log*; an agent of a multiprocess sharded run appends entries in
    whichever worker process hosts it at the time, so each worker mints
    from its own range to keep the names collision-free across hops.
    """
    global _SP_SEQ
    _SP_SEQ = itertools.count(1 + index * stride)


class Recoverability:
    """Per-step recoverability annotation (DART-style levels).

    Plain strings rather than an enum: the value rides inside every
    serialised :class:`EndOfStepEntry`, and old log blobs written
    before the field existed must restore against the dataclass default
    (``"exact"``).

    * ``EXACT`` — compensation restores the pre-step state bit for bit
      (the default; e.g. a full refund).
    * ``SEMANTIC`` — compensation restores an *acceptable* state, not
      the original one (refund minus fees, un-reserve with penalty,
      compensate-by-notification).  Rollback may cross it; the residue
      is the price.
    * ``UNRECOVERABLE`` — the step's effects cannot be compensated at
      all (goods shipped).  Unlike the hard
      ``mark_non_compensatable()`` stop, the rollback driver *adjusts*:
      it ratchets the target up to the nearest savepoint above the
      unrecoverable step instead of failing the rollback.
    """

    EXACT = "exact"
    SEMANTIC = "semantic"
    UNRECOVERABLE = "unrecoverable"
    ALL = (EXACT, SEMANTIC, UNRECOVERABLE)


class EntryKind(enum.Enum):
    """Discriminator for log entries."""

    SAVEPOINT = "SP"
    BEGIN_OF_STEP = "BOS"
    OPERATION = "OE"
    END_OF_STEP = "EOS"


class OperationKind(enum.Enum):
    """The three operation-entry types of Section 4.4.1."""

    RESOURCE = "RCE"
    AGENT = "ACE"
    MIXED = "MCE"


@dataclass
class LogEntry:
    """Common base; concrete entries define :attr:`kind`.

    Every entry lazily caches its own serialised form (``_blob``): log
    entries are immutable once written — the single exception is the
    savepoint-diff compose performed by
    :meth:`~repro.log.rollback_log.RollbackLog.discard_savepoint`, which
    must call :meth:`invalidate_blob`.  The cache is what makes agent
    packaging incremental: an entry is pickled once when first packed
    (or appended to a size-tracking log) and the bytes are reused for
    every later migration, shadow copy and size query.  The cache never
    travels — :meth:`__getstate__` drops it, so ``capture(entry)`` is
    byte-stable regardless of cache state.
    """

    @property
    def kind(self) -> EntryKind:
        raise NotImplementedError

    def blob(self) -> bytes:
        """The serialised form of this entry, cached after first use."""
        cached = self.__dict__.get("_blob")
        if cached is not None:
            serialization.STATS["entry_blob_reused"] += 1
            return cached
        blob = serialization.capture(self)
        self.__dict__["_blob"] = blob
        serialization.STATS["entry_blob_serialized"] += 1
        return blob

    def blob_size(self) -> int:
        """Serialised size in bytes (cached alongside the blob)."""
        return len(self.blob())

    def seed_blob(self, blob: bytes) -> None:
        """Adopt ``blob`` as the cached serialised form (unpack path)."""
        self.__dict__["_blob"] = blob

    def invalidate_blob(self) -> None:
        """Drop the cached blob after an in-place payload mutation."""
        self.__dict__.pop("_blob", None)

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_blob", None)
        return state


@dataclass
class SavepointEntry(LogEntry):
    """SP — savepoint identifier plus SRO restore information.

    ``wro_payload`` is only populated by the saga-style *baseline*
    mechanism (ref [4]), which snapshots the complete program state —
    including weakly reversible objects — into the savepoint.  The
    paper's mechanism never stores WRO images; the field exists so the
    baseline benchmarks can demonstrate why image-restoring WROs is
    incorrect (Section 4.1).

    ``sro_hashes`` (transition logging, real savepoints) maps each SRO
    key to a content hash of its serialised value *at this savepoint*.
    The next savepoint diffs against these digests instead of
    reconstructing and re-serialising the previous SRO state; the
    hashes describe the state the savepoint denotes, so diff
    composition during discard never needs to touch them.  ``None`` on
    virtual savepoints, state-logging entries and logs written before
    the field existed (writers fall back to reconstruction).
    """

    sp_id: str
    mode: str  # LoggingMode value: "state" | "transition"
    payload: Any  # full SRO image (state) or diff vs previous SP (transition)
    virtual: bool = False
    wro_payload: Any = None
    sro_hashes: Optional[dict] = None

    @property
    def kind(self) -> EntryKind:
        return EntryKind.SAVEPOINT

    @staticmethod
    def fresh_id(prefix: str = "sp") -> str:
        """Generate a unique savepoint identifier."""
        return f"{prefix}-{next(_SP_SEQ)}"


@dataclass
class BeginOfStepEntry(LogEntry):
    """BOS — the step starts here; names the executing node."""

    node: str
    step_index: int

    @property
    def kind(self) -> EntryKind:
        return EntryKind.BEGIN_OF_STEP


@dataclass
class OperationEntry(LogEntry):
    """OE — one compensating operation with its parameters.

    ``op_name`` resolves against the compensation registry
    (:mod:`repro.compensation.registry`).  ``node`` / ``resource`` are
    set for RESOURCE and MIXED entries (where the resource lives);
    AGENT entries execute wherever the agent is.
    """

    op_kind: OperationKind
    op_name: str
    params: dict[str, Any] = field(default_factory=dict)
    node: Optional[str] = None
    resource: Optional[str] = None

    @property
    def kind(self) -> EntryKind:
        return EntryKind.OPERATION


@dataclass
class EndOfStepEntry(LogEntry):
    """EOS — the step ended; carries the optimization/FT metadata.

    ``recoverability`` is the step's :class:`Recoverability` level; the
    rollback driver reads it (newest first) to choose the partial-
    rollback point.
    """

    node: str
    step_index: int
    has_mixed: bool = False
    alternates: tuple[str, ...] = ()
    non_compensatable: bool = False
    recoverability: str = Recoverability.EXACT

    @property
    def kind(self) -> EntryKind:
        return EntryKind.END_OF_STEP
