"""The agent rollback log (paper, Section 4.2).

The log is attached to the agent and migrates with it.  It mixes
*physical logging* — savepoint entries carrying images (or transition
diffs) of the strongly reversible objects — with *logical logging* —
operation entries carrying compensating operations and their
parameters.  Begin-of-step / end-of-step entries frame each step and
name the node that executed it; the end-of-step entry additionally
carries the mixed-compensation flag used by the optimized rollback
(Section 4.4.1) and optional alternate nodes for fault-tolerant
compensation (Section 4.3, discussion).
"""

from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    EntryKind,
    LogEntry,
    OperationEntry,
    OperationKind,
    SavepointEntry,
)
from repro.log.modes import LoggingMode, sro_diff, sro_apply, sro_compose
from repro.log.rollback_log import RollbackLog

__all__ = [
    "LogEntry",
    "EntryKind",
    "SavepointEntry",
    "BeginOfStepEntry",
    "OperationEntry",
    "OperationKind",
    "EndOfStepEntry",
    "LoggingMode",
    "sro_diff",
    "sro_apply",
    "sro_compose",
    "RollbackLog",
]
