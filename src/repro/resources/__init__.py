"""Transactional resources.

Concrete resource managers that agents access during steps, modelled on
the examples the paper uses throughout Section 3:

* :class:`~repro.resources.bank.Bank` — accounts with deposit /
  withdraw / transfer; overdraft policy makes compensation *failable*
  (Section 3.2's 20 USD example);
* :class:`~repro.resources.cash.Mint` — Chaum-style digital cash: coins
  carry serial numbers, so compensation returns an *equivalent* but not
  identical state (fresh serials);
* :class:`~repro.resources.shop.Shop` — goods with stock; refund
  policies (full refund, fee within a deadline, credit note after it)
  reproduce the time-dependent reimbursement example;
* :class:`~repro.resources.exchange.CurrencyExchange` — the USD→EUR
  example that *requires* a mixed compensation entry (Section 4.4.1);
* :class:`~repro.resources.directory.InfoDirectory` — read-only queries
  whose results live in strongly reversible objects (no compensation);
* :class:`~repro.resources.database.DataStore` — supports an operation
  that deletes bulk data and is declared non-compensatable
  (Section 3.2's final category).

All resources derive from
:class:`~repro.resources.base.TransactionalResource`: every mutation
happens under an exclusive item lock inside a transaction and registers
an undo, so step/compensation transaction aborts restore exact state.
"""

from repro.resources.base import ResourceView, TransactionalResource
from repro.resources.bank import Bank, OverdraftPolicy
from repro.resources.cash import Coin, Mint
from repro.resources.shop import CreditNote, Receipt, RefundPolicy, Shop
from repro.resources.exchange import CurrencyExchange
from repro.resources.directory import InfoDirectory
from repro.resources.database import DataStore
from repro.resources.economy import EconomyAuditor
from repro.resources.mailbox import MessageBoard
from repro.resources.auction import AuctionHouse

__all__ = [
    "ResourceView",
    "TransactionalResource",
    "Bank",
    "OverdraftPolicy",
    "Coin",
    "Mint",
    "Shop",
    "Receipt",
    "CreditNote",
    "RefundPolicy",
    "CurrencyExchange",
    "InfoDirectory",
    "DataStore",
    "EconomyAuditor",
    "MessageBoard",
    "AuctionHouse",
]
