"""Cross-world money-conservation auditing.

The strongest end-to-end invariant we can check on the paper's
e-commerce scenarios: however many steps execute, roll back, crash and
retry, no money is created or destroyed.  The auditor sums, per
currency:

* bank account balances,
* mint floats (which back shop tills and unissued value), and
* the face value of live coins wherever they are (agent purses are
  counted through the mints' live-serial ledger, so the audit does not
  need to find every purse).

Credit notes are *liabilities* of shops, already counted inside tills,
so they are reported separately but not added to the money supply.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.resources.bank import Bank
from repro.resources.cash import Mint


class EconomyAuditor:
    """Computes the money supply across a set of banks and mints."""

    def __init__(self, banks: Iterable[Bank] = (), mints: Iterable[Mint] = ()):
        self.banks = list(banks)
        self.mints = list(mints)

    def add_bank(self, bank: Bank) -> None:
        self.banks.append(bank)

    def add_mint(self, mint: Mint) -> None:
        self.mints.append(mint)

    def live_coin_value(self, mint: Mint) -> int:
        """Face value of all live coins issued by ``mint``.

        Coins are immutable and the mint logs every serial's value at
        issuance via the serial ledger; we reconstruct value from the
        mint state so the audit is independent of where purses travelled.
        """
        total = 0
        for key in mint.keys():
            if isinstance(key, tuple) and key[0] == "serial" \
                    and mint.peek(key) == "live":
                total += mint.peek(("value", key[1]), 0)
        return total

    def money_supply(self) -> dict[str, int]:
        """Total money per currency."""
        supply: dict[str, int] = defaultdict(int)
        for bank in self.banks:
            supply[bank.currency] += bank.total_balance()
        for mint in self.mints:
            supply[mint.currency] += mint.float_value()
            supply[mint.currency] += self.live_coin_value(mint)
        return dict(supply)
