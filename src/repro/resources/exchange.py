"""Currency exchange — the canonical mixed-compensation resource.

Section 4.4.1: "a step where the agent changes digital cash from one
currency into another (e.g. from USD into Euro) at the bank.  To
compensate this [...] the compensating operation needs access to the
weakly reversible object containing the cash in Euro, to the object
where the received USD have to be stored, and to the resource which
changes the money."  Compensating a conversion therefore requires the
agent *and* the resource to be co-located — a mixed compensation entry.

The exchange holds one mint per currency and a rate table; converting
redeems coins at the source mint and issues fresh coins at the target
mint.  An optional spread makes round trips lossy, another source of
"the agent must be able to deal with the changed situation".
"""

from __future__ import annotations


from repro.errors import UsageError
from repro.resources.base import TransactionalResource
from repro.resources.cash import Coin, Mint, purse_value
from repro.tx.manager import Transaction


class CurrencyExchange(TransactionalResource):
    """Converts coins between currencies at a posted rate."""

    def __init__(self, name: str, mints: dict[str, Mint],
                 spread_bps: int = 0):
        super().__init__(name)
        self.mints = dict(mints)
        self.spread_bps = spread_bps
        self.seed("spread_earned", 0)

    def set_rate(self, src: str, dst: str, numerator: int,
                 denominator: int) -> None:
        """World-setup: posted rate ``dst = src * numerator/denominator``."""
        self.seed(("rate", src, dst), (numerator, denominator))
        self.seed(("rate", dst, src), (denominator, numerator))

    def rate(self, tx: Transaction, src: str, dst: str) -> tuple[int, int]:
        """Current rate as an exact fraction (numerator, denominator)."""
        rate = self.read(tx, ("rate", src, dst))
        if rate is None:
            raise UsageError(f"{self.name}: no rate {src}->{dst}")
        return rate

    def convert(self, tx: Transaction, coins: list[Coin],
                to_currency: str) -> list[Coin]:
        """Exchange ``coins`` into ``to_currency`` coins.

        The source coins are redeemed at their mint; target coins are
        issued fresh (new serials).  The spread, if any, stays with the
        exchange.
        """
        if not coins:
            return []
        src_currency = coins[0].currency
        if any(c.currency != src_currency for c in coins):
            raise UsageError("mixed-currency purse in one conversion")
        if src_currency == to_currency:
            raise UsageError("conversion to same currency")
        src_mint = self._mint(src_currency)
        dst_mint = self._mint(to_currency)
        numerator, denominator = self.rate(tx, src_currency, to_currency)
        amount = purse_value(coins)
        gross = (amount * numerator) // denominator
        spread = (gross * self.spread_bps) // 10_000
        net = gross - spread
        src_mint.redeem(tx, coins)
        if spread:
            self.write(tx, "spread_earned",
                       self.read(tx, "spread_earned", 0) + spread)
        if net <= 0:
            return []
        # The exchange funds the target issuance from its own reserves;
        # reserves are modelled as unlimited mint float seeded at setup.
        return dst_mint.issue(tx, net, 1)

    def _mint(self, currency: str) -> Mint:
        mint = self.mints.get(currency)
        if mint is None:
            raise UsageError(f"{self.name}: no mint for {currency}")
        return mint
