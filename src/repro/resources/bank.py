"""Bank accounts — the paper's running compensation example.

Section 3.2 uses accounts three times:

* ``deposit(x)`` / ``withdraw(x)`` on an *overdraftable* account commute,
  so compensations built from them produce **sound** histories;
* a dependent transaction that branches on the balance ("if I have
  enough money, then ...") breaks commutativity — the
  :meth:`Bank.conditional_withdraw` operation exists to reproduce that;
* on a *non-overdraftable* account, compensating a 20 USD deposit by a
  20 USD withdrawal can **fail** when another transaction drained the
  account in the meantime — withdraw raises
  :class:`~repro.errors.CompensationFailed` inside compensation
  transactions, which the rollback driver retries per its policy.

Balances are integers in minor units (cents) to keep conservation
checks exact.
"""

from __future__ import annotations


from repro.errors import CompensationFailed, UsageError
from repro.resources.base import TransactionalResource
from repro.tx.manager import Transaction


class OverdraftPolicy:
    """Account overdraft behaviour."""

    ALLOWED = "allowed"
    FORBIDDEN = "forbidden"


class Bank(TransactionalResource):
    """A bank holding named accounts in one currency."""

    def __init__(self, name: str, currency: str = "USD"):
        super().__init__(name)
        self.currency = currency

    # -- setup -------------------------------------------------------------------

    def open_account(self, tx: Transaction, account: str, balance: int = 0,
                     overdraft: str = OverdraftPolicy.FORBIDDEN) -> None:
        """Create ``account`` with an opening ``balance`` (minor units)."""
        if self.read(tx, account) is not None:
            raise UsageError(f"{self.name}: account {account!r} exists")
        self.write(tx, account, {"balance": balance, "overdraft": overdraft})

    def seed_account(self, account: str, balance: int = 0,
                     overdraft: str = OverdraftPolicy.FORBIDDEN) -> None:
        """World-setup variant of :meth:`open_account` (no transaction)."""
        self.seed(account, {"balance": balance, "overdraft": overdraft})

    # -- operations ----------------------------------------------------------------

    def balance(self, tx: Transaction, account: str) -> int:
        """Current balance of ``account``."""
        return self._require(tx, account)["balance"]

    def deposit(self, tx: Transaction, account: str, amount: int) -> int:
        """Add ``amount``; returns the new balance."""
        if amount < 0:
            raise UsageError("negative deposit")
        record = self._require(tx, account)
        updated = dict(record, balance=record["balance"] + amount)
        self.write(tx, account, updated)
        return updated["balance"]

    def withdraw(self, tx: Transaction, account: str, amount: int,
                 compensating: bool = False) -> int:
        """Remove ``amount``; returns the new balance.

        On a non-overdraftable account with insufficient funds this
        raises :class:`UsageError` during normal forward execution and
        :class:`CompensationFailed` when ``compensating=True`` — the
        paper's "compensation transaction fails" case, which the
        enclosing compensation transaction surfaces for retry.
        """
        if amount < 0:
            raise UsageError("negative withdrawal")
        record = self._require(tx, account)
        new_balance = record["balance"] - amount
        if new_balance < 0 and record["overdraft"] != OverdraftPolicy.ALLOWED:
            if compensating:
                raise CompensationFailed(
                    f"{self.name}/{account}: cannot withdraw {amount}, "
                    f"balance {record['balance']}")
            raise UsageError(
                f"{self.name}/{account}: insufficient funds "
                f"({record['balance']} < {amount})")
        self.write(tx, account, dict(record, balance=new_balance))
        return new_balance

    def transfer(self, tx: Transaction, src: str, dst: str, amount: int,
                 compensating: bool = False) -> None:
        """Move ``amount`` from ``src`` to ``dst`` atomically.

        The paper's resource-compensation example (Section 4.4.1): the
        compensating operation is ``transfer(dst, src, amount)`` and
        needs only the two account names and the amount as parameters —
        no agent state.
        """
        self.withdraw(tx, src, amount, compensating=compensating)
        self.deposit(tx, dst, amount)

    def conditional_withdraw(self, tx: Transaction, account: str,
                             amount: int, threshold: int) -> bool:
        """Withdraw only when the balance is at least ``threshold``.

        Section 3.2's "if I have enough money, then ..." transaction: it
        reads the balance to decide, so it does not commute with
        deposit/withdraw, breaking history soundness.  Returns whether
        the withdrawal happened.
        """
        record = self._require(tx, account)
        if record["balance"] < threshold:
            return False
        self.write(tx, account,
                   dict(record, balance=record["balance"] - amount))
        return True

    # -- auditing --------------------------------------------------------------------

    def total_balance(self) -> int:
        """Sum of all balances (conservation audits; not transactional)."""
        return sum(rec["balance"] for rec in
                   (self.peek(k) for k in self.keys()) if rec is not None)

    def _require(self, tx: Transaction, account: str) -> dict:
        record = self.read(tx, account)
        if record is None:
            raise UsageError(f"{self.name}: no account {account!r}")
        return record
