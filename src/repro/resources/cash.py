"""Chaum-style digital cash.

Coins are bearer objects: immutable value + currency + a serial number
issued by the mint.  The paper's key observation (Section 3.2) is that a
compensated purchase returns "the same amount of cash [... but] the
digital coins have different serial numbers" — an *equivalent*, not
identical, state.  That is why a purse of coins is a **weakly
reversible object**: it cannot be restored from a before-image, because
the before-image's serials are retired the moment the originals were
spent.

The mint tracks serial life cycle (issued → retired) so tests can assert
the no-double-spend invariant and the freshness of compensation coins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import UsageError
from repro.resources.base import TransactionalResource
from repro.tx.manager import Transaction


@dataclass(frozen=True)
class Coin:
    """One digital coin (immutable bearer token)."""

    serial: str
    value: int  # minor units
    currency: str = "USD"


def purse_value(coins: Iterable[Coin], currency: Optional[str] = None) -> int:
    """Total value of ``coins`` (optionally restricted to one currency)."""
    return sum(c.value for c in coins
               if currency is None or c.currency == currency)


class Mint(TransactionalResource):
    """Issues, verifies and retires coins; backs them with a float account.

    State items:

    * ``("serial", s)`` → "live" | "retired"
    * ``"float"``       → minor units of backing money held by the mint
    * ``"next_serial"`` → issuance counter
    """

    def __init__(self, name: str, currency: str = "USD"):
        super().__init__(name)
        self.currency = currency
        self.seed("float", 0)
        self.seed("next_serial", 1)

    # -- issuance ------------------------------------------------------------------

    def fund(self, tx: Transaction, amount: int) -> None:
        """Add backing money to the mint float (e.g. from a bank transfer)."""
        self.write(tx, "float", self.read(tx, "float", 0) + amount)

    def issue(self, tx: Transaction, value: int, count: int = 1) -> list[Coin]:
        """Issue ``count`` fresh coins of ``value`` against the float."""
        total = value * count
        available = self.read(tx, "float", 0)
        if total > available:
            raise UsageError(
                f"{self.name}: float {available} cannot back {total}")
        self.write(tx, "float", available - total)
        coins = []
        for _ in range(count):
            serial = self._next_serial(tx)
            self.write(tx, ("serial", serial), "live")
            self.write(tx, ("value", serial), value)
            coins.append(Coin(serial=serial, value=value,
                              currency=self.currency))
        return coins

    def redeem(self, tx: Transaction, coins: list[Coin]) -> int:
        """Retire ``coins`` and return their value to the float."""
        total = 0
        for coin in coins:
            self._retire(tx, coin)
            total += coin.value
        self.write(tx, "float", self.read(tx, "float", 0) + total)
        return total

    def reissue(self, tx: Transaction, coins: list[Coin]) -> list[Coin]:
        """Swap ``coins`` for fresh ones of equal total value.

        This is the equivalence-not-identity compensation primitive: the
        returned coins carry new serials.  Used by shops refunding a
        purchase and by the currency exchange compensating a conversion.
        """
        total = self.redeem(tx, coins)
        if total == 0:
            return []
        return self.issue(tx, total, 1)

    # -- verification -------------------------------------------------------------------

    def is_live(self, tx: Transaction, coin: Coin) -> bool:
        """Whether ``coin``'s serial is currently spendable."""
        return self.read(tx, ("serial", coin.serial)) == "live"

    def _retire(self, tx: Transaction, coin: Coin) -> None:
        status = self.read(tx, ("serial", coin.serial))
        if status != "live":
            raise UsageError(
                f"{self.name}: coin {coin.serial} is {status!r} "
                "(double spend?)")
        self.write(tx, ("serial", coin.serial), "retired")

    def _next_serial(self, tx: Transaction) -> str:
        n = self.read(tx, "next_serial", 1)
        self.write(tx, "next_serial", n + 1)
        return f"{self.name}-{self.currency}-{n:08d}"

    # -- auditing ------------------------------------------------------------------------

    def float_value(self) -> int:
        """Backing money currently held (not transactional)."""
        return self.peek("float", 0)

    def live_serials(self) -> set[str]:
        """Serial numbers currently live (not transactional)."""
        return {key[1] for key in self.keys()
                if isinstance(key, tuple) and key[0] == "serial"
                and self.peek(key) == "live"}
