"""Auction house — compensation windows that slam shut.

Section 3.2's final compensation category: operations that cannot be
compensated at all.  An auction gives this a natural shape:

* placing a **bid** is compensable while the auction is open — the
  compensating operation withdraws the bid;
* once the auction **closes**, the allocation is final: withdrawing the
  winning bid is impossible, so a step that might commit across a close
  boundary must either declare itself non-compensatable or accept that
  a later rollback fails.

Bids escrow real money (bank transfers handled by the caller); the
resource tracks bids and the winner so tests can assert allocation
invariants across rollbacks.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CompensationFailed, UsageError
from repro.resources.base import TransactionalResource
from repro.tx.manager import Transaction


class AuctionHouse(TransactionalResource):
    """Single-item English auctions, one per lot name."""

    def open_lot(self, lot: str, reserve: int, closes_at: float) -> None:
        """World-setup: open an auction for ``lot``."""
        self.seed(("lot", lot), {
            "reserve": reserve, "closes_at": closes_at, "state": "open",
            "bids": (), "winner": None,
        })

    def _lot(self, tx: Transaction, lot: str) -> dict:
        record = self.read(tx, ("lot", lot))
        if record is None:
            raise UsageError(f"{self.name}: no lot {lot!r}")
        return record

    def bid(self, tx: Transaction, lot: str, bidder: str, amount: int,
            now: float) -> str:
        """Place a bid; returns the bid id used for withdrawal."""
        record = self._lot(tx, lot)
        self._maybe_close(tx, lot, record, now)
        record = self._lot(tx, lot)
        if record["state"] != "open":
            raise UsageError(f"{self.name}: lot {lot!r} is closed")
        if amount < record["reserve"]:
            raise UsageError(
                f"{self.name}: bid {amount} below reserve "
                f"{record['reserve']}")
        highest = self.highest_bid(tx, lot)
        if highest is not None and amount <= highest[2]:
            raise UsageError(
                f"{self.name}: bid {amount} does not beat {highest[2]}")
        bid_id = f"{lot}#{len(record['bids'])}"
        bids = record["bids"] + ((bid_id, bidder, amount),)
        self.write(tx, ("lot", lot), dict(record, bids=bids))
        return bid_id

    def withdraw_bid(self, tx: Transaction, lot: str, bid_id: str,
                     now: float) -> int:
        """Compensate a bid.  Impossible once the lot closed."""
        record = self._lot(tx, lot)
        self._maybe_close(tx, lot, record, now)
        record = self._lot(tx, lot)
        if record["state"] != "open":
            raise CompensationFailed(
                f"{self.name}: lot {lot!r} closed; the allocation is "
                "final and bids cannot be withdrawn")
        remaining = tuple(b for b in record["bids"] if b[0] != bid_id)
        if len(remaining) == len(record["bids"]):
            raise CompensationFailed(
                f"{self.name}: no bid {bid_id!r} on lot {lot!r}")
        amount = next(b[2] for b in record["bids"] if b[0] == bid_id)
        self.write(tx, ("lot", lot), dict(record, bids=remaining))
        return amount

    def close(self, tx: Transaction, lot: str, now: float) -> Optional[tuple]:
        """Close the lot; returns (bid_id, bidder, amount) or None."""
        record = self._lot(tx, lot)
        if record["state"] != "open":
            return record["winner"]
        winner = max(record["bids"], key=lambda b: b[2], default=None)
        self.write(tx, ("lot", lot),
                   dict(record, state="closed", winner=winner))
        return winner

    def _maybe_close(self, tx: Transaction, lot: str, record: dict,
                     now: float) -> None:
        if record["state"] == "open" and now >= record["closes_at"]:
            self.close(tx, lot, now)

    def highest_bid(self, tx: Transaction, lot: str) -> Optional[tuple]:
        record = self._lot(tx, lot)
        return max(record["bids"], key=lambda b: b[2], default=None)

    def winner_of(self, lot: str) -> Optional[tuple]:
        """Committed winner (not transactional)."""
        record = self.peek(("lot", lot))
        return record["winner"] if record else None

    def is_open(self, tx: Transaction, lot: str, now: float) -> bool:
        record = self._lot(tx, lot)
        return record["state"] == "open" and now < record["closes_at"]
