"""Base machinery for transactional resources.

A resource is a named object living on exactly one node (or, for the
fault-tolerant rollback extension, on a replica group of nodes).  All
reads and writes go through a :class:`ResourceView`, which binds the
resource to one transaction and charges per-operation virtual time.

Mutations use the write-through + undo-log discipline:

* :meth:`TransactionalResource.write` takes the item's exclusive lock,
  applies the new value immediately and registers an undo restoring the
  prior value, so the owning transaction reads its own writes while
  conflicting transactions are locked out until commit/abort (strict
  2PL).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Iterator, Optional

from repro.errors import UsageError
from repro.tx.locks import LockManager
from repro.tx.manager import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.timing import TimingModel

_MISSING = object()


class TransactionalResource:
    """A lockable, undo-logged state space addressed by item keys."""

    def __init__(self, name: str):
        self.name = name
        self.node: Optional[str] = None  # set when attached to a node
        self._state: dict[Hashable, Any] = {}
        self.locks = LockManager(name)
        self.ops_executed = 0

    # -- attachment -------------------------------------------------------------

    def attach(self, node: str) -> None:
        """Bind the resource to its hosting node (runtime wiring)."""
        self.node = node

    # -- transactional primitives --------------------------------------------------

    def read(self, tx: Transaction, key: Hashable, default: Any = None) -> Any:
        """Read ``key`` under lock inside ``tx``."""
        tx.require_active()
        self.locks.acquire(key, tx)
        return self._state.get(key, default)

    def write(self, tx: Transaction, key: Hashable, value: Any) -> None:
        """Write ``key`` under lock inside ``tx`` (undo restores prior)."""
        tx.require_active()
        self.locks.acquire(key, tx)
        prior = self._state.get(key, _MISSING)
        tx.register_undo(lambda: self._restore(key, prior))
        self._state[key] = value
        self.ops_executed += 1

    def delete(self, tx: Transaction, key: Hashable) -> Any:
        """Delete ``key`` under lock inside ``tx`` (undo restores it)."""
        tx.require_active()
        self.locks.acquire(key, tx)
        if key not in self._state:
            raise UsageError(f"{self.name}: no item {key!r}")
        prior = self._state.pop(key)
        tx.register_undo(lambda: self._restore(key, prior))
        self.ops_executed += 1
        return prior

    def _restore(self, key: Hashable, prior: Any) -> None:
        if prior is _MISSING:
            self._state.pop(key, None)
        else:
            self._state[key] = prior

    # -- non-transactional inspection (tests, auditors) -----------------------------

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Committed-or-staged value without locking (read-only tooling)."""
        return self._state.get(key, default)

    def keys(self) -> Iterator[Hashable]:
        return iter(list(self._state.keys()))

    def seed(self, key: Hashable, value: Any) -> None:
        """Initialise state outside any transaction (world setup only)."""
        self._state[key] = value


class ResourceView:
    """A resource bound to one transaction, with time charging.

    This is what step code and compensating operations receive: calling
    a domain method (``deposit``, ``buy``, ...) on the view invokes the
    resource method with the bound transaction and charges
    ``timing.resource_op`` (or ``compensation_op``) per call.
    """

    def __init__(self, resource: TransactionalResource, tx: Transaction,
                 timing: "TimingModel", compensating: bool = False):
        self._resource = resource
        self._tx = tx
        self._timing = timing
        self._compensating = compensating

    @property
    def name(self) -> str:
        return self._resource.name

    @property
    def node(self) -> Optional[str]:
        return self._resource.node

    def __getattr__(self, op: str) -> Any:
        target = getattr(self._resource, op, None)
        if target is None or not callable(target) or op.startswith("_"):
            raise UsageError(
                f"resource {self._resource.name!r} has no operation {op!r}")

        def call(*args: Any, **kwargs: Any) -> Any:
            cost = (self._timing.compensation_op if self._compensating
                    else self._timing.resource_op)
            self._tx.charge(cost)
            return target(self._tx, *args, **kwargs)

        return call
