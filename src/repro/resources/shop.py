"""Shops with stock, digital-cash payment and refund policies.

Reproduces two pieces of Section 3.2:

* the out-of-stock scenario: T1 buys elsewhere because T2 took the last
  item; compensating T2 later does not disturb T1 (acceptable non-sound
  history);
* the time-dependent reimbursement policy: "until x hours after the
  purchase, the seller returns cash but charges a small fee, after
  that, the customer only gets a credit note".

A purchase pays with coins into the shop till; a refund pays out fresh
coins (via the shop's mint) minus the fee, or issues a
:class:`CreditNote`.  Either way the agent's purse afterwards differs
from its before-image — which is exactly why the purse must be a weakly
reversible object.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import CompensationFailed, UsageError
from repro.resources.base import TransactionalResource
from repro.resources.cash import Coin, Mint, purse_value
from repro.tx.manager import Transaction

_RECEIPTS = itertools.count(1)


@dataclass(frozen=True)
class Receipt:
    """Proof of purchase; the parameter of the compensating operation."""

    receipt_id: str
    shop: str
    item: str
    quantity: int
    paid: int
    time: float


@dataclass(frozen=True)
class CreditNote:
    """Store credit issued when the cash-refund deadline passed."""

    shop: str
    value: int
    receipt_id: str


@dataclass(frozen=True)
class RefundPolicy:
    """How a shop compensates a purchase.

    ``cash_window`` — seconds after purchase during which a cash refund
    is possible; ``fee`` — minor units charged on a cash refund;
    ``after_window`` — "credit-note" or "cash" (a shop may keep
    refunding cash forever).
    """

    cash_window: float = float("inf")
    fee: int = 0
    after_window: str = "credit-note"


class Shop(TransactionalResource):
    """One shop on one node, backed by a mint for coin handling.

    State items: ``("stock", item)`` → units, ``("price", item)`` →
    minor units, ``"till"`` → coins held, ``("receipt", id)`` → open
    receipt records, ``"fees"`` → accumulated refund fees.
    """

    def __init__(self, name: str, mint: Mint,
                 policy: Optional[RefundPolicy] = None):
        super().__init__(name)
        self.mint = mint
        self.policy = policy or RefundPolicy()
        self.seed("till", 0)
        self.seed("fees", 0)

    # -- setup -----------------------------------------------------------------

    def stock_item(self, item: str, units: int, price: int) -> None:
        """World-setup: put ``units`` of ``item`` on the shelf."""
        self.seed(("stock", item), units)
        self.seed(("price", item), price)

    # -- forward operations -------------------------------------------------------

    def in_stock(self, tx: Transaction, item: str) -> int:
        """Units of ``item`` currently on the shelf."""
        return self.read(tx, ("stock", item), 0)

    def price_of(self, tx: Transaction, item: str) -> int:
        """Unit price of ``item``."""
        price = self.read(tx, ("price", item))
        if price is None:
            raise UsageError(f"{self.name}: unknown item {item!r}")
        return price

    def buy(self, tx: Transaction, item: str, quantity: int,
            coins: list[Coin], now: float) -> tuple[Receipt, list[Coin]]:
        """Buy ``quantity`` of ``item`` paying with ``coins``.

        Returns ``(receipt, change_coins)``.  The shop redeems the
        payment through its mint and keeps value in the till; change is
        paid out in fresh coins.
        """
        stock = self.in_stock(tx, item)
        if stock < quantity:
            raise UsageError(
                f"{self.name}: only {stock} x {item!r} in stock")
        cost = self.price_of(tx, item) * quantity
        paid = purse_value(coins)
        if paid < cost:
            raise UsageError(
                f"{self.name}: {paid} does not cover {cost}")
        self.write(tx, ("stock", item), stock - quantity)
        self.mint.redeem(tx, coins)
        change = self.mint.issue(tx, paid - cost, 1) if paid > cost else []
        self.write(tx, "till", self.read(tx, "till", 0) + cost)
        receipt = Receipt(receipt_id=f"{self.name}-r{next(_RECEIPTS)}",
                          shop=self.name, item=item, quantity=quantity,
                          paid=cost, time=now)
        self.write(tx, ("receipt", receipt.receipt_id), {
            "item": item, "quantity": quantity, "paid": cost,
            "time": now, "state": "open",
        })
        return receipt, change

    # -- compensating operation ------------------------------------------------------

    def refund(self, tx: Transaction, receipt_id: str,
               now: float) -> tuple[list[Coin], Optional[CreditNote], int]:
        """Compensate a purchase: restock and reimburse per policy.

        Returns ``(coins, credit_note, fee)``; exactly one of ``coins``
        / ``credit_note`` is non-empty unless the refund value is zero.
        Raises :class:`CompensationFailed` if the receipt is unknown or
        already refunded (a compensation must not run twice).
        """
        record = self.read(tx, ("receipt", receipt_id))
        if record is None or record["state"] != "open":
            raise CompensationFailed(
                f"{self.name}: receipt {receipt_id!r} not refundable")
        self.write(tx, ("receipt", receipt_id),
                   dict(record, state="refunded"))
        stock_key = ("stock", record["item"])
        self.write(tx, stock_key,
                   self.read(tx, stock_key, 0) + record["quantity"])
        till = self.read(tx, "till", 0)
        if till < record["paid"]:
            raise CompensationFailed(
                f"{self.name}: till {till} cannot cover refund "
                f"{record['paid']}")
        self.write(tx, "till", till - record["paid"])
        elapsed = now - record["time"]
        if elapsed <= self.policy.cash_window:
            fee = min(self.policy.fee, record["paid"])
            value = record["paid"] - fee
            if fee:
                self.write(tx, "fees", self.read(tx, "fees", 0) + fee)
                self.write(tx, "till", self.read(tx, "till", 0) + fee)
            coins = self.mint.issue(tx, value, 1) if value else []
            return coins, None, fee
        if self.policy.after_window == "cash":
            coins = self.mint.issue(tx, record["paid"], 1)
            return coins, None, 0
        # Credit note: value stays in the till as a liability.
        self.write(tx, "till", self.read(tx, "till", 0) + record["paid"])
        note = CreditNote(shop=self.name, value=record["paid"],
                          receipt_id=receipt_id)
        return [], note, 0

    # -- auditing ------------------------------------------------------------------------

    def till_value(self) -> int:
        """Money in the till, including fees kept (not transactional)."""
        return self.peek("till", 0)
