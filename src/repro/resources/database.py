"""A small record store with a non-compensatable bulk delete.

Section 3.2, final category: "if a transaction deletes a considerable
amount of data in a database, it would be necessary to log all this data
to be able to compensate the deletion.  Therefore, if a step contains an
operation which cannot be compensated, the step cannot be rolled back
after its commit."

:meth:`DataStore.purge` is that operation.  A step that calls it must
mark itself non-compensatable via the step context; the rollback driver
refuses to roll back across such a step
(:class:`~repro.errors.NotCompensatable`).
"""

from __future__ import annotations

from typing import Any

from repro.errors import UsageError
from repro.resources.base import TransactionalResource
from repro.tx.manager import Transaction


class DataStore(TransactionalResource):
    """Named records with insert/update/delete plus an unloggable purge."""

    def insert(self, tx: Transaction, record_id: str, value: Any) -> None:
        """Insert a record (compensation: ``remove``)."""
        if self.read(tx, ("rec", record_id)) is not None:
            raise UsageError(f"{self.name}: record {record_id!r} exists")
        self.write(tx, ("rec", record_id), value)
        count = self.read(tx, "count", 0)
        self.write(tx, "count", count + 1)

    def remove(self, tx: Transaction, record_id: str) -> Any:
        """Delete one record (compensation: re-``insert`` the value)."""
        value = self.read(tx, ("rec", record_id))
        if value is None:
            raise UsageError(f"{self.name}: no record {record_id!r}")
        self.delete(tx, ("rec", record_id))
        self.write(tx, "count", self.read(tx, "count", 0) - 1)
        return value

    def get(self, tx: Transaction, record_id: str) -> Any:
        """Read one record."""
        return self.read(tx, ("rec", record_id))

    def purge(self, tx: Transaction, prefix: str = "") -> int:
        """Bulk-delete every record whose id starts with ``prefix``.

        Deliberately returns only the *count* — the deleted data is not
        retained anywhere, which is what makes the operation
        non-compensatable.  Within the enclosing transaction it is still
        undoable (abort restores); after commit it is final.
        """
        doomed = [key for key in self.keys()
                  if isinstance(key, tuple) and key[0] == "rec"
                  and str(key[1]).startswith(prefix)]
        for key in doomed:
            self.delete(tx, key)
        self.write(tx, "count", self.read(tx, "count", 0) - len(doomed))
        return len(doomed)

    def record_count(self) -> int:
        """Committed record count (not transactional)."""
        return self.peek("count", 0)
