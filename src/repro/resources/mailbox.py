"""Message boards — the "active messaging" application area.

The paper's introduction lists active messaging among the
fault-sensitive application areas for mobile agents.  A
:class:`MessageBoard` is a transactional resource agents post messages
to (progress reports to the owner, coordination notes to sibling
agents).  Posting is compensable while the message is unread — the
compensating operation *retracts* it; once a reader consumed the
message, retraction fails (the information escaped), which is another
natural :class:`~repro.errors.CompensationFailed` source and a gentle
example of compensation windows closing over time.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import CompensationFailed
from repro.resources.base import TransactionalResource
from repro.tx.manager import Transaction

_MSG_SEQ = itertools.count(1)


class MessageBoard(TransactionalResource):
    """Topic-organised durable message board.

    State items: ``("msg", message_id)`` → record, ``("topic", name)``
    → list of message ids (newest last), ``"posted"`` / ``"retracted"``
    counters.
    """

    def post(self, tx: Transaction, topic: str, body: Any,
             sender: str) -> str:
        """Post ``body`` under ``topic``; returns the message id.

        The id is the parameter a retraction needs — a pure resource
        compensation (no agent state required).
        """
        message_id = f"{self.name}-m{next(_MSG_SEQ)}"
        self.write(tx, ("msg", message_id), {
            "topic": topic, "body": body, "sender": sender,
            "state": "unread",
        })
        ids = list(self.read(tx, ("topic", topic), ()))
        ids.append(message_id)
        self.write(tx, ("topic", topic), tuple(ids))
        self.write(tx, "posted", self.read(tx, "posted", 0) + 1)
        return message_id

    def read_topic(self, tx: Transaction, topic: str,
                   reader: Optional[str] = None) -> list[Any]:
        """Read (and mark consumed) all messages under ``topic``."""
        bodies = []
        for message_id in self.read(tx, ("topic", topic), ()):
            record = self.read(tx, ("msg", message_id))
            if record is None:
                continue
            if record["state"] == "unread":
                self.write(tx, ("msg", message_id),
                           dict(record, state="read", reader=reader))
            bodies.append(record["body"])
        return bodies

    def peek_topic(self, tx: Transaction, topic: str) -> list[Any]:
        """Read without consuming (no retraction window closes)."""
        bodies = []
        for message_id in self.read(tx, ("topic", topic), ()):
            record = self.read(tx, ("msg", message_id))
            if record is not None:
                bodies.append(record["body"])
        return bodies

    def retract(self, tx: Transaction, message_id: str) -> None:
        """Compensate a post: remove the message if still unread.

        Raises :class:`CompensationFailed` once a reader consumed it —
        retracting published-and-read information is impossible.
        """
        record = self.read(tx, ("msg", message_id))
        if record is None:
            raise CompensationFailed(
                f"{self.name}: message {message_id!r} unknown")
        if record["state"] != "unread":
            raise CompensationFailed(
                f"{self.name}: message {message_id!r} already read by "
                f"{record.get('reader')!r}")
        self.delete(tx, ("msg", message_id))
        ids = tuple(i for i in self.read(tx, ("topic", record["topic"]), ())
                    if i != message_id)
        self.write(tx, ("topic", record["topic"]), ids)
        self.write(tx, "retracted", self.read(tx, "retracted", 0) + 1)

    # -- auditing ---------------------------------------------------------------

    def message_count(self, topic: Optional[str] = None) -> int:
        """Messages currently on the board (not transactional)."""
        count = 0
        for key in self.keys():
            if isinstance(key, tuple) and key[0] == "msg":
                if topic is None or self.peek(key)["topic"] == topic:
                    count += 1
        return count
