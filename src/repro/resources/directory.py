"""Read-only information directory.

The paper's strongly-reversible example (Section 4.1): "if an agent
collects information and stores this information into a vector, then
this information can be rolled back to a savepoint without the need of
a compensating operation".  Queries against this resource have no
resource-side effects, so steps that only query need no operation
entries at all — the scenario motivating the transfer-avoidance
optimization (Section 4.3, "second problem").
"""

from __future__ import annotations

from typing import Any

from repro.errors import UsageError
from repro.resources.base import TransactionalResource
from repro.tx.manager import Transaction


class InfoDirectory(TransactionalResource):
    """Keyed catalogue of offers/records; queries are side-effect free."""

    def publish(self, topic: str, records: list[Any]) -> None:
        """World-setup: publish ``records`` under ``topic``."""
        self.seed(("topic", topic), list(records))

    def query(self, tx: Transaction, topic: str) -> list[Any]:
        """All records under ``topic`` (copy; read-locked)."""
        records = self.read(tx, ("topic", topic))
        if records is None:
            raise UsageError(f"{self.name}: unknown topic {topic!r}")
        return list(records)

    def best_offer(self, tx: Transaction, topic: str,
                   key: str = "price") -> Any:
        """The record minimising ``record[key]`` under ``topic``."""
        records = self.query(tx, topic)
        if not records:
            raise UsageError(f"{self.name}: topic {topic!r} empty")
        return min(records, key=lambda r: r[key])
