"""Stable storage: durable key-value store and agent input queues.

"Stable" means the contents survive simulated node crashes.  The
exactly-once protocols of the paper (ref [11]) keep the agent in a
node's *agent input queue* on stable storage between steps; the partial
rollback mechanism reuses the same queues to park the agent between
compensation transactions (paper, Section 4.3).
"""

from repro.storage.serialization import capture, restore, size_of, snapshot
from repro.storage.stable import StableStore
from repro.storage.queues import AgentInputQueue, QueueItem

__all__ = [
    "capture",
    "restore",
    "size_of",
    "snapshot",
    "StableStore",
    "AgentInputQueue",
    "QueueItem",
]
