"""Pickle-based state capture.

The paper's platform (Mole) captures an agent's code, data and execution
state with Java object serialisation before every migration.  We use
:mod:`pickle` for the same purpose: agents are plain Python objects whose
classes are importable, so a pickle carries a code *reference* (module +
qualified name) plus the full private data space — the exact analogue of
Mole's serialized agent, including realistic byte sizes for the transfer
cost model.
"""

from __future__ import annotations

import pickle
from typing import Any, TypeVar

T = TypeVar("T")

PROTOCOL = pickle.HIGHEST_PROTOCOL


def capture(obj: Any) -> bytes:
    """Serialise ``obj`` (agent, log, package...) to bytes."""
    return pickle.dumps(obj, protocol=PROTOCOL)


def restore(blob: bytes) -> Any:
    """Re-instantiate an object previously captured with :func:`capture`."""
    return pickle.loads(blob)


def size_of(obj: Any) -> int:
    """Serialised size of ``obj`` in bytes (what a migration would move)."""
    return len(capture(obj))


def snapshot(obj: T) -> T:
    """Deep, reference-free copy via a capture/restore round trip.

    Used for before-images of strongly reversible objects: the image must
    not alias live agent state, otherwise later mutations would corrupt
    the savepoint (paper, Section 4.1).
    """
    return restore(capture(obj))
