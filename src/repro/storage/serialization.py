"""Pickle-based state capture with a structural fast path.

The paper's platform (Mole) captures an agent's code, data and execution
state with Java object serialisation before every migration.  We use
:mod:`pickle` for the same purpose: agents are plain Python objects whose
classes are importable, so a pickle carries a code *reference* (module +
qualified name) plus the full private data space — the exact analogue of
Mole's serialized agent, including realistic byte sizes for the transfer
cost model.

Two kinds of copies dominate the hot path:

* :func:`capture` / :func:`restore` — honest byte serialisation, used
  for anything that actually travels (agent blobs, log-entry blobs).
* :func:`snapshot` — a deep, reference-free copy used for before-images
  of strongly reversible objects.  The generic implementation is a
  capture/restore round trip; since SRO spaces are overwhelmingly plain
  dict/list/scalar structures, a structural copier (with an aliasing
  memo, like :func:`copy.deepcopy`) handles the common case without
  touching pickle at all and falls back to the round trip the moment it
  meets a type it does not understand.

Module-level :data:`STATS` counters make the cache/fast-path behaviour
observable from benches and tests without threading a metrics object
through every call site.
"""

from __future__ import annotations

import pickle
from typing import Any, TypeVar

T = TypeVar("T")

PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Instrumentation for the incremental-serialization subsystem.  Keys:
#: ``snapshot_fast`` / ``snapshot_pickle`` — structural vs round-trip
#: snapshots; ``entry_blob_serialized`` / ``entry_blob_reused`` — log
#: entry pickles actually performed vs satisfied from an entry's cache;
#: ``entry_hydration_deferred`` / ``entry_hydrated`` — frames adopted
#: lazily at unpack vs actually unpickled later on first read (the gap
#: is the per-hop ``pickle.loads`` work lazy hydration avoided).
#:
#: The ``ipc_*`` / ``frame_reused`` / ``ring_spills`` family instruments
#: the multiprocess barrier exchange (see :mod:`repro.node.shmring`):
#: ``ipc_bytes_framed`` — payload bytes shipped zero-copy as shared-
#: memory ring frames; ``ipc_bytes_copied`` — payload bytes that had to
#: be freshly serialized at the IPC boundary (the whole exchange in
#: pipe mode, only ring-capacity spills in shm mode — ≈0 when every
#: cached blob fits); ``ipc_bytes_control`` — pipe-side control/manifest
#: pickle bytes in shm mode; ``frame_reused`` — frames whose bytes were
#: reused byte-for-byte from a cached blob; ``ring_spills`` — frames
#: that exceeded the ring budget and fell back to the pipe.
#:
#: ``teardown.suppressed`` counts errors swallowed during best-effort
#: teardown (worker shutdown, shm unlink, pipe close): each one also
#: emits a :class:`ResourceWarning`, so leaked-segment diagnosis has a
#: counter and a message instead of a silent ``pass``.
STATS: dict[str, int] = {
    "snapshot_fast": 0,
    "snapshot_pickle": 0,
    "entry_blob_serialized": 0,
    "entry_blob_reused": 0,
    "entry_hydration_deferred": 0,
    "entry_hydrated": 0,
    "ipc_bytes_framed": 0,
    "ipc_bytes_copied": 0,
    "ipc_bytes_control": 0,
    "frame_reused": 0,
    "ring_spills": 0,
    "teardown.suppressed": 0,
}

#: The IPC-accounting subset of :data:`STATS` — the keys the process-
#: backed world facade folds from the coordinator process into its
#: summed per-worker stats (both barrier directions stay visible).
IPC_STAT_KEYS = ("ipc_bytes_framed", "ipc_bytes_copied",
                 "ipc_bytes_control", "frame_reused", "ring_spills")


def reset_stats() -> None:
    """Zero the :data:`STATS` counters (test/bench isolation)."""
    for key in STATS:
        STATS[key] = 0


def stats() -> dict[str, int]:
    """A point-in-time copy of the :data:`STATS` counters."""
    return dict(STATS)


def capture(obj: Any) -> bytes:
    """Serialise ``obj`` (agent, log entry, package...) to bytes."""
    return pickle.dumps(obj, protocol=PROTOCOL)


def restore(blob: bytes) -> Any:
    """Re-instantiate an object previously captured with :func:`capture`."""
    return pickle.loads(blob)


def size_of(obj: Any) -> int:
    """Serialised size of ``obj`` in bytes (what a migration would move)."""
    return len(capture(obj))


# -- process-boundary picklability audit --------------------------------------


def find_unpicklable(obj: Any, path: str = "$",
                     _seen: "set[int] | None" = None
                     ) -> "list[tuple[str, str]]":
    """Locate the parts of ``obj`` that cannot cross a process boundary.

    Returns ``(path, reason)`` pairs for every offending component —
    e.g. ``("$.give_up", "cannot pickle function <lambda> ...")`` — by
    recursing into containers and object ``__dict__``s whenever the
    whole object fails a :func:`capture` round trip.  Empty list ⇒
    picklable.  Used by the multiprocess shard drivers and the audit
    tests to turn an opaque ``PicklingError`` deep inside a worker
    pipe into a message naming the exact frame and attribute at fault
    (typically a closure captured into bridge traffic).  Cyclic object
    graphs are handled (each container is descended into once).
    """
    try:
        pickle.dumps(obj, protocol=PROTOCOL)
        return []
    except Exception as exc:  # noqa: BLE001 - reducers raise anything
        reason = f"{type(exc).__name__}: {exc}"
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return []  # already reported through the first path that hit it
    _seen.add(id(obj))
    found: list[tuple[str, str]] = []
    if isinstance(obj, dict):
        for key, value in obj.items():
            found.extend(find_unpicklable(value, f"{path}[{key!r}]", _seen))
            found.extend(find_unpicklable(key, f"{path}<key {key!r}>",
                                          _seen))
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for i, value in enumerate(obj):
            found.extend(find_unpicklable(value, f"{path}[{i}]", _seen))
    elif hasattr(obj, "__dict__"):
        for attr, value in vars(obj).items():
            found.extend(find_unpicklable(value, f"{path}.{attr}", _seen))
    # The culprit is this object itself (a lambda, a local class, an
    # open handle...) when no constituent explains the failure.
    return found or [(path, reason)]


def assert_picklable(obj: Any, context: str) -> None:
    """Raise ``TypeError`` naming every unpicklable part of ``obj``.

    ``context`` describes what is being shipped ("bridge outbox of
    shard 2", "agent package of ag-7", ...) so the failure reads as a
    contract violation, not a pickle stack trace.
    """
    offenders = find_unpicklable(obj)
    if offenders:
        details = "\n".join(f"  {path}: {reason}"
                            for path, reason in offenders)
        raise TypeError(
            f"{context} is not process-picklable; offending parts:\n"
            f"{details}\n"
            f"(bridge traffic and agent state must not capture "
            f"closures, lambdas or live world objects)")


# -- structural snapshot fast path -------------------------------------------

#: Immutable leaves that may be shared between the live state and its
#: snapshot without breaking the no-aliasing guarantee.
_ATOMIC = (type(None), bool, int, float, complex, str, bytes)


class _NeedsPickle(Exception):
    """Internal: the structure contains a type the fast path can't copy."""


def _structural_copy(obj: Any, memo: dict[int, tuple[Any, Any]]) -> Any:
    if isinstance(obj, _ATOMIC):
        return obj
    key = id(obj)
    hit = memo.get(key)
    if hit is not None:
        return hit[1]
    cls = type(obj)  # exact types only: subclasses keep pickle semantics
    if cls is dict:
        out: Any = {}
        memo[key] = (obj, out)
        for k, v in obj.items():
            out[_structural_copy(k, memo)] = _structural_copy(v, memo)
        return out
    if cls is list:
        out = []
        memo[key] = (obj, out)
        for v in obj:
            out.append(_structural_copy(v, memo))
        return out
    if cls is tuple:
        out = tuple(_structural_copy(v, memo) for v in obj)
        memo[key] = (obj, out)
        return out
    if cls is set:
        out = set()
        memo[key] = (obj, out)
        for v in obj:
            out.add(_structural_copy(v, memo))
        return out
    if cls is frozenset:
        out = frozenset(_structural_copy(v, memo) for v in obj)
        memo[key] = (obj, out)
        return out
    if cls is bytearray:
        out = bytearray(obj)
        memo[key] = (obj, out)
        return out
    raise _NeedsPickle


def snapshot(obj: T) -> T:
    """Deep, reference-free copy of ``obj``.

    Used for before-images of strongly reversible objects: the image must
    not alias live agent state, otherwise later mutations would corrupt
    the savepoint (paper, Section 4.1).

    Plain dict/list/tuple/set/scalar structures are copied structurally
    (preserving internal aliasing via a memo, exactly like the pickle
    round trip would); any custom class, dataclass or exotic container
    anywhere in the structure falls back to the capture/restore round
    trip for the whole object, so semantics never change.
    """
    try:
        copy = _structural_copy(obj, {})
    except _NeedsPickle:
        STATS["snapshot_pickle"] += 1
        return restore(capture(obj))
    STATS["snapshot_fast"] += 1
    return copy
