"""Durable agent input queues.

Every node owns one agent input queue on stable storage (paper,
Section 2).  The exactly-once protocols keep the agent there between
steps; the rollback mechanism additionally parks "(spID, agent, LOG)"
packages there between compensation transactions (Sections 4.3, 4.4.1).

Queue operations are transactional:

* :meth:`AgentInputQueue.dequeue` removes the item immediately (so no
  other transaction can also pick it up) and registers an undo that puts
  it back at the *front* — after an abort the queue looks exactly as if
  the transaction never ran, which is what lets an aborted step or
  compensation simply be retried from the queue.
* :meth:`AgentInputQueue.enqueue` defers the append to commit time, so a
  package becomes visible on the destination node only when the
  distributed transaction that transferred it commits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import UsageError
from repro.storage.serialization import size_of
from repro.tx.manager import Transaction

_ITEM_IDS = itertools.count(1)


def reset_item_ids() -> None:
    """Restart the queue item id sequence (test isolation only)."""
    global _ITEM_IDS
    _ITEM_IDS = itertools.count(1)


def set_item_id_namespace(index: int, stride: int = 10 ** 9) -> None:
    """Move this process's item-id sequence into a disjoint namespace.

    Item ids only need to be unique per node queue, but the shard
    workers of a multiprocess run offset them anyway so that ids in
    logs, labels and debug dumps never collide across processes.
    """
    global _ITEM_IDS
    _ITEM_IDS = itertools.count(1 + index * stride)


@dataclass
class QueueItem:
    """One durable queue entry."""

    payload: Any
    size_bytes: int
    item_id: int = field(default_factory=lambda: next(_ITEM_IDS))
    attempts: int = 0


class AgentInputQueue:
    """Durable FIFO of agent packages on one node."""

    def __init__(self, node: str):
        self.node = node
        self._items: list[QueueItem] = []
        self.on_visible: Optional[Callable[[QueueItem], None]] = None
        #: World-journal capture seam: every applied queue op —
        #: append, dequeue, abort requeue, remove — is reported as
        #: ``(op, item)``.  Wired only when the owning world journals.
        self.on_journal: Optional[Callable[[str, QueueItem], None]] = None
        self.enqueued_total = 0
        self.dequeued_total = 0

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> list[QueueItem]:
        """Snapshot of currently visible items, front first."""
        return list(self._items)

    def head(self) -> Optional[QueueItem]:
        """The front item, if any (not removed)."""
        return self._items[0] if self._items else None

    # -- transactional operations ----------------------------------------------

    def enqueue(self, payload: Any, size_bytes: Optional[int] = None,
                tx: Optional[Transaction] = None) -> QueueItem:
        """Append ``payload``; visible at commit (immediately if no tx).

        ``size_bytes`` defaults to the payload's own ``size_bytes``
        (agent packages know their framed size in O(1)); arbitrary
        payloads fall back to a fresh serialisation.
        """
        if size_bytes is None:
            size_bytes = getattr(payload, "size_bytes", None)
            if not isinstance(size_bytes, int):
                # e.g. objects exposing size_bytes() as a method
                size_bytes = size_of(payload)
        item = QueueItem(payload=payload, size_bytes=size_bytes)
        if tx is None:
            self._append(item)
        else:
            tx.require_active()
            tx.register_commit(lambda: self._append(item))
        return item

    def dequeue(self, tx: Transaction,
                item_id: Optional[int] = None) -> QueueItem:
        """Remove and return an item inside ``tx`` ("read and deleted").

        Without ``item_id`` the front item is taken.  An abort restores
        the item at the front with its attempt counter bumped.
        """
        tx.require_active()
        if not self._items:
            raise UsageError(f"{self.node}: input queue empty")
        if item_id is None:
            item = self._items.pop(0)
        else:
            index = self._index_of(item_id)
            item = self._items.pop(index)
        self.dequeued_total += 1
        if self.on_journal is not None:
            self.on_journal("dequeue", item)

        def _undo() -> None:
            item.attempts += 1
            self._items.insert(0, item)
            if self.on_journal is not None:
                self.on_journal("requeue", item)
            if self.on_visible is not None:
                self.on_visible(item)

        tx.register_undo(_undo)
        return item

    def remove(self, item_id: int, tx: Optional[Transaction] = None) -> QueueItem:
        """Remove a specific item (used to discard stale FT shadow copies)."""
        index = self._index_of(item_id)
        item = self._items.pop(index)
        if tx is not None:
            tx.register_undo(lambda: self._items.insert(index, item))
        if self.on_journal is not None:
            self.on_journal("remove", item)
        return item

    def _index_of(self, item_id: int) -> int:
        for i, item in enumerate(self._items):
            if item.item_id == item_id:
                return i
        raise UsageError(f"{self.node}: no queue item {item_id}")

    def _append(self, item: QueueItem) -> None:
        self._items.append(item)
        self.enqueued_total += 1
        if self.on_journal is not None:
            self.on_journal("enqueue", item)
        if self.on_visible is not None:
            self.on_visible(item)
