"""Durable key-value store with transactional access.

Contents survive simulated node crashes (the injector wipes only
volatile structures).  Mutations made inside a transaction are applied
immediately with a registered undo, so an abort — including the implicit
abort performed when the hosting node crashes mid-transaction —
restores the exact prior contents.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.errors import UsageError
from repro.tx.manager import Transaction

_MISSING = object()


class StableStore:
    """A named durable mapping living on one node.

    ``on_mutate`` is the world journal's capture seam: when set, every
    applied mutation — including the ``restore`` ops an abort replays —
    is reported as ``(op, key, value)``.  It is wired only when the
    owning world journals, so the un-journaled hot path stays free.
    """

    def __init__(self, name: str):
        self.name = name
        self._data: dict[Any, Any] = {}
        self.writes = 0
        self.on_mutate: Optional[Callable[[str, Any, Any], None]] = None

    def get(self, key: Any, default: Any = None) -> Any:
        """Read the current (possibly tx-staged) value for ``key``."""
        return self._data.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def keys(self) -> Iterator[Any]:
        return iter(list(self._data.keys()))

    def put(self, key: Any, value: Any, tx: Optional[Transaction] = None) -> None:
        """Durably set ``key`` to ``value``; undoable when ``tx`` given."""
        if tx is not None:
            tx.require_active()
            prior = self._data.get(key, _MISSING)
            tx.register_undo(lambda: self._restore(key, prior))
        self._data[key] = value
        self.writes += 1
        if self.on_mutate is not None:
            self.on_mutate("put", key, value)

    def delete(self, key: Any, tx: Optional[Transaction] = None) -> Any:
        """Remove ``key``; undoable when ``tx`` given.  Returns the value."""
        if key not in self._data:
            raise UsageError(f"{self.name}: no such key {key!r}")
        value = self._data.pop(key)
        if tx is not None:
            tx.register_undo(lambda: self._restore(key, value))
        self.writes += 1
        if self.on_mutate is not None:
            self.on_mutate("delete", key, value)
        return value

    def _restore(self, key: Any, prior: Any) -> None:
        if prior is _MISSING:
            self._data.pop(key, None)
        else:
            self._data[key] = prior
        if self.on_mutate is not None:
            self.on_mutate("restore", key,
                           None if prior is _MISSING else prior)

    def __len__(self) -> int:
        return len(self._data)
