"""Metric collection for simulation runs.

A single :class:`Metrics` instance is shared by every component of a
world.  It offers counters, byte accumulators, duration series and event
timelines; benchmark harnesses read it after a run to produce the
paper-style tables.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Optional


@dataclass
class Sample:
    """One timestamped observation in a series."""

    time: float
    value: float


class Metrics:
    """Counters, series and timelines for one simulated world."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.bytes: dict[str, int] = defaultdict(int)
        self.series: dict[str, list[Sample]] = defaultdict(list)
        self.timeline: list[tuple[float, str, dict[str, Any]]] = []
        self.timeline_enabled = True

    # -- counters -----------------------------------------------------------

    def incr(self, name: str, by: int = 1) -> None:
        """Increment counter ``name``."""
        self.counters[name] += by

    def add_bytes(self, name: str, n: int) -> None:
        """Accumulate ``n`` bytes under ``name``."""
        self.bytes[name] += n

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def total_bytes(self, name: str) -> int:
        """Accumulated bytes under ``name`` (0 if never recorded)."""
        return self.bytes.get(name, 0)

    # -- series / timeline ---------------------------------------------------

    def observe(self, name: str, time: float, value: float) -> None:
        """Append a timestamped sample to series ``name``."""
        self.series[name].append(Sample(time, value))

    def record(self, time: float, kind: str, **details: Any) -> None:
        """Append a timeline event (used by tests to check orderings)."""
        if self.timeline_enabled:
            self.timeline.append((time, kind, dict(details)))

    def events(self, kind: Optional[str] = None) -> list[tuple[float, str, dict[str, Any]]]:
        """Timeline events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self.timeline)
        return [e for e in self.timeline if e[1] == kind]

    # -- summaries -----------------------------------------------------------

    def series_values(self, name: str) -> list[float]:
        """Just the values of series ``name`` in time order."""
        return [s.value for s in self.series.get(name, [])]

    def summary(self) -> dict[str, Any]:
        """Flat snapshot of all counters and byte totals."""
        out: dict[str, Any] = {}
        for name, value in sorted(self.counters.items()):
            out[name] = value
        for name, value in sorted(self.bytes.items()):
            out[f"bytes.{name}"] = value
        return out

    def reset(self) -> None:
        """Clear all recorded data (counters, bytes, series, timeline)."""
        self.counters.clear()
        self.bytes.clear()
        self.series.clear()
        self.timeline.clear()
