"""Event queue and virtual clock.

The simulator is a classic calendar-queue discrete-event kernel: events
are ``(time, priority, seq, callback)`` tuples ordered by time, then
priority, then insertion sequence, so runs are fully deterministic.
Callbacks run synchronously at their scheduled virtual time and may
schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
import random
import struct
import zlib
from typing import Callable, Optional

from repro.errors import UsageError


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be
    cancelled; a cancelled event is skipped when its time arrives.
    """

    __slots__ = ("time", "priority", "seq", "fn", "label", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[[], None], label: str):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event {self.label!r} t={self.time:.6f} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the kernel-owned random number generator.  All stochastic
        behaviour in the system (crash sampling, latency jitter, workload
        generation) must draw from :attr:`rng` or from generators forked
        via :meth:`fork_rng`, which keeps whole runs reproducible.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._seed = seed
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._suspended = False
        self.events_processed = 0
        self._trace_digest: Optional[int] = None

    # -- execution-trace digest ------------------------------------------------
    #
    # A rolling CRC over (time, label) of every fired event.  Two
    # kernels that executed the same event stream — e.g. one shard of
    # an in-process sharded run and the same shard inside a worker
    # process — end with the same digest, which turns "did the runs
    # really take the same path?" from a judgement call on outcomes
    # into an exact event-by-event check.  Off by default (zero cost);
    # the differential test harness switches it on.

    def enable_trace_digest(self) -> None:
        """Start accumulating the event-stream digest (idempotent)."""
        if self._trace_digest is None:
            self._trace_digest = 0

    def trace_digest(self) -> Optional[int]:
        """The rolling event-stream CRC (None unless enabled)."""
        return self._trace_digest

    def _digest_event(self, time: float, label: str) -> None:
        # Normalise away a trailing ":<id>" segment: queue-item ids are
        # minted from process-local counters, so their raw values (not
        # the event stream) differ between an in-process shard and the
        # same shard inside a worker process.
        head, sep, tail = label.rpartition(":")
        if sep and tail.isdigit():
            label = head
        payload = struct.pack("<d", time) + label.encode()
        self._trace_digest = zlib.crc32(payload, self._trace_digest)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None],
                 label: str = "", priority: int = 0) -> Event:
        """Schedule ``fn`` to run ``delay`` virtual seconds from now.

        ``priority`` breaks ties among events at the same instant (lower
        runs first); insertion order breaks remaining ties.
        """
        if delay < 0:
            raise UsageError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.now + delay, priority, next(self._seq), fn, label)
        heapq.heappush(self._queue, (event.time, priority, event.seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[[], None],
                    label: str = "", priority: int = 0) -> Event:
        """Schedule ``fn`` at absolute virtual time ``time`` (>= now)."""
        return self.schedule(time - self.now, fn, label=label,
                             priority=priority)

    def fork_rng(self, name: str) -> random.Random:
        """Return an independent RNG derived from the kernel seed.

        Subsystems that need their own stochastic stream (e.g. the failure
        injector) fork one so that adding draws in one subsystem does not
        perturb another.
        """
        return random.Random(f"{self._seed}:{name}")

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> None:
        """Run events in order until the queue drains or ``until`` passes.

        Raises :class:`UsageError` when ``max_events`` fires, which almost
        always indicates a livelock (e.g. an unbounded retry loop).
        """
        if self._running:
            raise UsageError("simulator is not re-entrant")
        if self._suspended:
            raise UsageError("simulator is suspended (dead kernel)")
        self._running = True
        try:
            fired = 0
            while self._queue:
                time, _priority, _seq, event = self._queue[0]
                if until is not None and time > until:
                    self.now = until
                    return
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self.now = time
                if self._trace_digest is not None:
                    self._digest_event(time, event.label)
                event.fn()
                self.events_processed += 1
                if self._suspended:
                    # The event halted this kernel (whole-shard outage):
                    # stop immediately, freezing the clock at the halt
                    # instant.  Remaining events stay queued; they fire
                    # only if the kernel is resumed and advanced again.
                    return
                fired += 1
                if fired >= max_events:
                    raise UsageError(
                        f"simulation exceeded {max_events} events; "
                        f"likely livelock (last: {event.label!r})")
            if until is not None:
                self.now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for *_xs, e in self._queue if not e.cancelled)

    # -- epoch / barrier hooks (sharded multi-world execution) --------------

    @property
    def suspended(self) -> bool:
        """True while the kernel is halted (a dead shard's machine)."""
        return self._suspended

    def suspend(self) -> None:
        """Halt the kernel at the current instant.  Idempotent.

        Models a whole-kernel outage in a sharded run: the clock
        freezes, queued events stay pending, and :meth:`run` /
        :meth:`run_epoch` refuse to advance until :meth:`resume`.  When
        called from *inside* an event callback the run loop stops right
        after that callback returns, so the kill event is the last
        thing the dying kernel executes.  Scheduling onto a suspended
        kernel stays legal — durable deliveries may be addressed to a
        dead shard and fire after it is resumed.
        """
        self._suspended = True

    def resume(self) -> None:
        """Lift a :meth:`suspend`.  The backlog runs on the next advance."""
        self._suspended = False

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event (None when idle).

        Sharded runs use this as *lookahead*: the epoch driver can skip
        barriers no shard has work before, without perturbing event
        order.  Cancelled events at the head are discarded here (the
        heap guarantees only that the *root* is the minimum, so
        scanning past a cancelled root would return the wrong time).
        """
        while self._queue:
            time, _priority, _seq, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            return time
        return None

    def run_epoch(self, barrier: float,
                  max_events: int = 10_000_000) -> int:
        """Advance to the epoch ``barrier`` and stop there.

        Runs every event with ``time <= barrier`` and leaves the clock
        exactly at the barrier, so several kernels advanced to the same
        barrier have consistent virtual clocks — the lockstep primitive
        of :class:`~repro.node.sharded.ShardedWorld`.  Returns the
        number of events fired this epoch.
        """
        if barrier < self.now:
            raise UsageError(
                f"epoch barrier {barrier} is in the past (now={self.now})")
        before = self.events_processed
        self.run(until=barrier, max_events=max_events)
        return self.events_processed - before
