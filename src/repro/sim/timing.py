"""Virtual-time cost model.

The paper's evaluation platform (Mole on a LAN of agent servers) is
replaced by a simulation; this module centralises every duration the
simulation charges, so benchmark sweeps can vary the cost model without
touching protocol code.  Defaults are loosely calibrated to a late-90s
LAN (milliseconds), matching the environment the paper targets; all
benches report *relative* behaviour, which is what the paper's claims are
about.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TimingModel:
    """Durations (virtual seconds) charged by the runtime.

    Attributes
    ----------
    resource_op:
        One operation invoked on a transactional resource during a step.
    compensation_op:
        One compensating operation executed during a compensation
        transaction.  Charged per operation entry.
    stable_write_per_kb / stable_read_per_kb:
        Durable queue / stable-storage I/O, proportional to payload size.
    stable_io_fixed:
        Fixed cost of one stable-storage access (seek + sync).
    serialize_per_kb:
        Capturing (pickling) or re-instantiating agent state.
    tx_begin / tx_commit_local:
        Local transaction bookkeeping.
    two_pc_round:
        One coordinator<->participant round of the distributed commit
        (charged per remote participant, on top of network latency).
    step_body_fixed:
        Fixed cost of dispatching a step method.
    rpc_request_fixed:
        Fixed server-side cost of handling one remote request (used by the
        RCE-shipping path and the RPC-vs-migration model).
    """

    resource_op: float = 0.002
    compensation_op: float = 0.002
    stable_write_per_kb: float = 0.0004
    stable_read_per_kb: float = 0.0002
    stable_io_fixed: float = 0.004
    serialize_per_kb: float = 0.0002
    tx_begin: float = 0.0005
    tx_commit_local: float = 0.001
    two_pc_round: float = 0.002
    step_body_fixed: float = 0.001
    rpc_request_fixed: float = 0.001

    def stable_write(self, size_bytes: int) -> float:
        """Cost of durably writing ``size_bytes`` to stable storage."""
        return self.stable_io_fixed + self.stable_write_per_kb * (size_bytes / 1024.0)

    def stable_read(self, size_bytes: int) -> float:
        """Cost of reading ``size_bytes`` back from stable storage."""
        return self.stable_io_fixed + self.stable_read_per_kb * (size_bytes / 1024.0)

    def serialize(self, size_bytes: int) -> float:
        """Cost of capturing or re-instantiating ``size_bytes`` of state."""
        return self.serialize_per_kb * (size_bytes / 1024.0)

    def scaled(self, factor: float) -> "TimingModel":
        """Return a copy with every duration multiplied by ``factor``."""
        return replace(self, **{
            name: getattr(self, name) * factor
            for name in (
                "resource_op", "compensation_op", "stable_write_per_kb",
                "stable_read_per_kb", "stable_io_fixed", "serialize_per_kb",
                "tx_begin", "tx_commit_local", "two_pc_round",
                "step_body_fixed", "rpc_request_fixed",
            )
        })


@dataclass(frozen=True)
class NetworkParams:
    """Network cost/behaviour parameters.

    Attributes
    ----------
    latency:
        One-way propagation delay between any two distinct nodes.
    bandwidth_bytes_per_s:
        Serialisation rate for message payloads.
    jitter:
        Uniform jitter fraction applied to latency (0 disables).
    retry_backoff:
        Delay before a reliable-transfer retry after hitting a down node
        or a partitioned link.
    max_retries:
        Retries before the sender gives up for this attempt and surfaces
        the failure to the caller's retry policy (the protocol layer
        retries again later; "reliable network" per the paper means
        messages are never silently lost, not that nodes are always up).
    batch_window:
        Coalescing window of the batching transport layer: messages for
        the same (src, dst) link sent within this many virtual seconds
        of each other travel as one framed transfer (one latency
        charge, summed bytes).  ``0`` (the default) disables batching
        entirely — the world then wires the bare fabric.
    """

    latency: float = 0.005
    bandwidth_bytes_per_s: float = 1_250_000.0  # 10 Mbit/s LAN
    jitter: float = 0.0
    retry_backoff: float = 0.05
    max_retries: int = 10_000
    batch_window: float = 0.0

    def transfer_time(self, size_bytes: int) -> float:
        """One-way time to move ``size_bytes`` (latency + serialisation)."""
        return self.latency + size_bytes / self.bandwidth_bytes_per_s


DEFAULT_TIMING = TimingModel()
DEFAULT_NETWORK = NetworkParams()
