"""Deterministic discrete-event simulation kernel.

The kernel provides virtual time, an event queue, seeded randomness,
failure injection (node crashes and link partitions) and metric
collection.  Everything above this layer — network, storage, transaction
managers, the agent runtime — schedules its work through a single
:class:`~repro.sim.kernel.Simulator` instance, which makes whole-system
runs reproducible from a seed.
"""

from repro.sim.kernel import Event, Simulator
from repro.sim.metrics import Metrics
from repro.sim.timing import TimingModel
from repro.sim.failures import CrashPlan, FailureInjector

__all__ = [
    "Event",
    "Simulator",
    "Metrics",
    "TimingModel",
    "CrashPlan",
    "FailureInjector",
]
