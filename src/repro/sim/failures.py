"""Failure injection: node crashes/recoveries and link partitions.

The paper's fault model (Section 4.3) assumes *non-lasting* node and
network crashes and reliable data transfer.  The injector produces
exactly that: every crash is paired with a recovery a finite time later,
and partitions heal.  Injection is driven either by an explicit
:class:`CrashPlan` (used by unit tests to hit precise windows) or by a
stochastic schedule derived from the kernel seed (used by the
fault-tolerance benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class CrashPlan:
    """One planned outage: ``node`` is down during [at, at + duration)."""

    node: str
    at: float
    duration: float

    @property
    def recovery_time(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class PartitionPlan:
    """One planned partition of the link between two nodes (symmetric)."""

    a: str
    b: str
    at: float
    duration: float

    @property
    def heal_time(self) -> float:
        return self.at + self.duration


class FailureInjector:
    """Schedules crash/recover and partition/heal events on a simulator.

    Components register callbacks per node via :meth:`on_crash` /
    :meth:`on_recover`; the network consults :meth:`link_up` before
    delivering.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._rng = sim.fork_rng("failures")
        self._down: set[str] = set()
        self._partitioned: set[frozenset[str]] = set()
        self._crash_handlers: dict[str, list[Callable[[], None]]] = {}
        self._recover_handlers: dict[str, list[Callable[[], None]]] = {}
        self.crashes_injected = 0
        self.partitions_injected = 0

    # -- registration --------------------------------------------------------

    def on_crash(self, node: str, fn: Callable[[], None]) -> None:
        """Run ``fn`` (at crash time) whenever ``node`` crashes."""
        self._crash_handlers.setdefault(node, []).append(fn)

    def on_recover(self, node: str, fn: Callable[[], None]) -> None:
        """Run ``fn`` (at recovery time) whenever ``node`` recovers."""
        self._recover_handlers.setdefault(node, []).append(fn)

    # -- state queries --------------------------------------------------------

    def node_up(self, node: str) -> bool:
        """True when ``node`` is currently up."""
        return node not in self._down

    def link_up(self, a: str, b: str) -> bool:
        """True when the (symmetric) link between ``a`` and ``b`` works."""
        return frozenset((a, b)) not in self._partitioned

    def down_nodes(self) -> frozenset[str]:
        """The currently-down node set (barrier snapshots in worker mode)."""
        return frozenset(self._down)

    # -- planned injection -----------------------------------------------------

    def apply_plan(self, plans: Iterable[CrashPlan]) -> None:
        """Schedule every outage in ``plans``."""
        for plan in plans:
            self.sim.schedule_at(plan.at, lambda n=plan.node: self._crash(n),
                                 label=f"crash:{plan.node}", priority=-10)
            self.sim.schedule_at(plan.recovery_time,
                                 lambda n=plan.node: self._recover(n),
                                 label=f"recover:{plan.node}", priority=-10)

    def apply_partitions(self, plans: Iterable[PartitionPlan]) -> None:
        """Schedule every partition in ``plans``."""
        for plan in plans:
            key = frozenset((plan.a, plan.b))
            self.sim.schedule_at(
                plan.at, lambda k=key: self._partition(k),
                label=f"partition:{plan.a}-{plan.b}", priority=-10)
            self.sim.schedule_at(
                plan.heal_time, lambda k=key: self._heal(k),
                label=f"heal:{plan.a}-{plan.b}", priority=-10)

    def random_outages(self, nodes: Iterable[str], horizon: float,
                       rate_per_s: float, mean_downtime: float,
                       min_downtime: float = 0.01) -> list[CrashPlan]:
        """Generate a Poisson outage schedule over ``[0, horizon]``.

        Returns the plans (already scheduled) so benches can report them.
        Outages for one node never overlap.
        """
        plans: list[CrashPlan] = []
        for node in nodes:
            t = 0.0
            while True:
                if rate_per_s <= 0:
                    break
                t += self._rng.expovariate(rate_per_s)
                if t >= horizon:
                    break
                downtime = max(min_downtime,
                               self._rng.expovariate(1.0 / mean_downtime))
                plans.append(CrashPlan(node, t, downtime))
                t += downtime
        self.apply_plan(plans)
        return plans

    # -- transitions ------------------------------------------------------------

    def _crash(self, node: str) -> None:
        if node in self._down:
            return
        self._down.add(node)
        self.crashes_injected += 1
        for fn in self._crash_handlers.get(node, []):
            fn()

    def _recover(self, node: str) -> None:
        if node not in self._down:
            return
        self._down.discard(node)
        for fn in self._recover_handlers.get(node, []):
            fn()

    def _partition(self, key: frozenset) -> None:
        self._partitioned.add(key)
        self.partitions_injected += 1

    def _heal(self, key: frozenset) -> None:
        self._partitioned.discard(key)

    # -- direct control (tests) ---------------------------------------------------

    def force_crash(self, node: str) -> None:
        """Immediately crash ``node`` (test hook)."""
        self._crash(node)

    def force_recover(self, node: str) -> None:
        """Immediately recover ``node`` (test hook)."""
        self._recover(node)

    def force_partition(self, a: str, b: str) -> None:
        """Immediately partition the a-b link (test hook)."""
        self._partition(frozenset((a, b)))

    def force_heal(self, a: str, b: str) -> None:
        """Immediately heal the a-b link (test hook)."""
        self._heal(frozenset((a, b)))
