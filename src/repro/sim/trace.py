"""Human-readable execution traces.

The metrics timeline records protocol-level events (crashes,
recoveries, rollback initiation/completion, agent completion, FT
promotions).  This module renders that timeline — optionally enriched
with per-category counters — into text suitable for debugging runs and
for the examples' narrative output, and exports it as rows for external
analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.runtime import World

_EVENT_LABELS = {
    "crash": "node crashed",
    "recover": "node recovered",
    "rollback-initiated": "rollback initiated",
    "rollback-completed": "rollback completed",
    "agent-finished": "agent finished",
    "agent-failed": "agent FAILED",
    "ft-promotion": "shadow promoted",
}


def render_timeline(world: "World", kinds: Optional[Iterable[str]] = None,
                    limit: Optional[int] = None) -> str:
    """Render the world's event timeline, one line per event.

    ``kinds`` filters event categories; ``limit`` keeps the newest N.
    """
    wanted = set(kinds) if kinds is not None else None
    lines = []
    for time, kind, details in world.metrics.timeline:
        if wanted is not None and kind not in wanted:
            continue
        label = _EVENT_LABELS.get(kind, kind)
        extras = " ".join(f"{k}={v}" for k, v in sorted(details.items()))
        lines.append(f"t={time:10.4f}  {label:<20} {extras}")
    if limit is not None:
        lines = lines[-limit:]
    return "\n".join(lines)


def timeline_rows(world: "World") -> list[dict]:
    """The timeline as flat dict rows (for CSV/JSON export)."""
    rows = []
    for time, kind, details in world.metrics.timeline:
        row = {"time": time, "kind": kind}
        row.update(details)
        rows.append(row)
    return rows


def describe_world(world: "World") -> str:
    """A diagnostic snapshot: nodes, queues, agents, headline counters.

    Intended for debugging stuck scenarios ("where is my agent?") and
    used by tests as a stable, greppable rendering of world state.
    """
    lines = [f"world @ t={world.sim.now:.4f} "
             f"({world.sim.events_processed} events)"]
    lines.append("nodes:")
    for name in sorted(world.nodes):
        node = world.nodes[name]
        status = "up" if node.up else "DOWN"
        queued = len(node.queue)
        resources = ",".join(sorted(node.resources)) or "-"
        lines.append(f"  {name:<12} {status:<4} queue={queued} "
                     f"resources={resources}")
        for item in node.queue.items():
            package = item.payload
            kind = getattr(package, "kind", None)
            agent = getattr(package, "agent_id", "?")
            lines.append(f"    - item {item.item_id}: "
                         f"{getattr(kind, 'value', kind)} agent={agent} "
                         f"attempts={item.attempts}")
    lines.append("agents:")
    for agent_id in sorted(world.agents):
        record = world.agents[agent_id]
        lines.append(
            f"  {agent_id:<20} {record.status.value:<9} "
            f"steps={record.steps_committed} "
            f"rollbacks={record.rollbacks_completed} "
            f"transfers={record.agent_transfers}")
    interesting = ("steps.committed", "rollback.completed",
                   "compensation.tx_committed", "crash.count",
                   "ft.promotions")
    lines.append("counters:")
    for name in interesting:
        lines.append(f"  {name:<28} {world.metrics.count(name)}")
    return "\n".join(lines)
