"""Exception hierarchy for the repro package.

Exceptions fall into three families:

* **Control-flow signals** raised by agent step code to redirect the runtime
  (:class:`RollbackRequest`, :class:`StepAbortRequest`).  These are part of
  the public agent-programming API.
* **Transactional errors** raised by the transaction substrate
  (:class:`TransactionAborted`, :class:`LockConflict`, ...).  Agent code
  normally never sees these; the runtime translates them into step aborts
  and retries.
* **Usage errors** signalling misuse of the API (:class:`UsageError` and
  subclasses).  These indicate a bug in the embedding program and are never
  swallowed by the runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


# ---------------------------------------------------------------------------
# Control-flow signals (public agent API)
# ---------------------------------------------------------------------------

class RollbackRequest(ReproError):
    """Raised by agent code to initiate a partial rollback.

    Carries the identifier of the agent savepoint to which execution must
    be rolled back (paper, Section 4.3: ``rollback(spID)``).
    """

    def __init__(self, savepoint_id: str):
        super().__init__(f"rollback requested to savepoint {savepoint_id!r}")
        self.savepoint_id = savepoint_id


class StepAbortRequest(ReproError):
    """Raised by agent code to abort and restart the current step transaction.

    This is the paper's forward-recovery primitive inherited from the
    exactly-once protocols: the step transaction aborts, all its effects
    are undone by the transaction management, and the step is re-executed
    from the (unchanged) agent state in the input queue.
    """


class AgentFinished(ReproError):
    """Internal signal: the agent declared its job complete."""


# ---------------------------------------------------------------------------
# Transactional errors
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transaction-substrate failures."""


class TransactionAborted(TransactionError):
    """The enclosing transaction aborted; all staged effects were undone."""


class LockConflict(TransactionError):
    """A lock request conflicted with a lock held by another transaction."""

    def __init__(self, item: object, holder: object):
        super().__init__(f"lock conflict on {item!r} held by tx {holder!r}")
        self.item = item
        self.holder = holder


class NodeDown(TransactionError):
    """An operation addressed a node that is currently crashed."""

    def __init__(self, node_id: str):
        super().__init__(f"node {node_id!r} is down")
        self.node_id = node_id


class CompensationFailed(TransactionError):
    """A compensating operation could not be carried out.

    Paper, Section 3.2: e.g. withdrawing the compensation amount from a
    non-overdraftable account that no longer holds enough money.  The
    enclosing compensation transaction aborts and is retried; persistent
    failures surface to the rollback driver's failure policy.
    """


class NotCompensatable(ReproError):
    """An operation declared itself impossible to compensate.

    Paper, Section 3.2: once a step containing such an operation commits,
    the step can never be rolled back.  Attempting to roll over such a
    step raises this error.
    """


# ---------------------------------------------------------------------------
# Usage errors
# ---------------------------------------------------------------------------

class UsageError(ReproError):
    """The embedding program misused the public API."""


class UnknownCompensation(UsageError):
    """An operation entry referenced a compensation op not in the registry."""


class ForbiddenAccess(UsageError):
    """Compensation code accessed data it is not allowed to touch.

    Resource compensation entries must not access the agent; agent
    compensation entries must not access resources; no compensating
    operation may read or write strongly reversible objects (paper,
    Sections 4.3 and 4.4.1).
    """


class ItineraryError(UsageError):
    """Malformed itinerary (e.g. step entries directly in the main itinerary)."""


class WorkerError(ReproError):
    """A shard worker process reported a failure executing a command.

    An infrastructure-level error (not caller misuse, so deliberately
    *not* a UsageError): carries the remote traceback text so the
    coordinator-side error reads like the worker-side one.
    """

    def __init__(self, shard: int, remote_error: str,
                 remote_traceback: str = ""):
        detail = f"\n--- worker traceback ---\n{remote_traceback}" \
            if remote_traceback else ""
        super().__init__(
            f"shard {shard} worker failed: {remote_error}{detail}")
        self.shard = shard
        self.remote_error = remote_error


class WorkerDied(ReproError):
    """A shard worker process died (crash, SIGKILL, lost pipe).

    An infrastructure-level error (not caller misuse, so deliberately
    *not* a UsageError): the multiprocess driver surfaces a hard
    worker death as an explicit shard outage instead of hanging on a
    pipe that will never answer.
    """

    def __init__(self, shard: int, exitcode: object):
        super().__init__(
            f"shard {shard} worker process died (exitcode={exitcode}); "
            f"the shard is lost — treat as a permanent shard outage")
        self.shard = shard
        self.exitcode = exitcode


class LogCorrupt(ReproError):
    """The rollback log violated its structural invariants."""


class WorldKilled(ReproError):
    """Fault injection: the coordinator was hard-stopped mid-run.

    Raised by a run after :meth:`~repro.node.runtime.World.kill_world`
    fires — the simulated analogue of a real coordinator crash
    (SIGKILL, OOM, preemption).  Everything the world journal committed
    up to the kill survives; :func:`~repro.journal.resume_world` builds
    the continuation.
    """

    def __init__(self, barrier: float, phase: str):
        super().__init__(
            f"world killed at barrier {barrier} (phase={phase})")
        self.barrier = barrier
        self.phase = phase


class JournalError(ReproError):
    """Base class for world-journal failures."""


class JournalCorrupt(JournalError):
    """The journal is damaged before its last commit point.

    Damage that extends to the physical end of the journal (a torn
    write from the crash being recovered from) is *expected* and
    silently discarded; damage anywhere earlier means the journal
    cannot vouch for its own prefix and recovery must not proceed.
    """


class JournalDiverged(JournalError):
    """Replaying the journal did not reproduce the committed digest.

    The journaled inputs (config + setup ops) no longer re-execute to
    the state committed at the recovery frontier — e.g. the embedding
    program changed, or the journal was edited.  Resuming would
    silently fork history, so recovery refuses.
    """
