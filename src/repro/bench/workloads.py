"""Parameterised tour workloads.

A *tour* sends one agent along a chain of nodes.  Every step performs
work on the local bank and registers compensating operations according
to its :class:`StepSpec.kind`:

``rce``
    transfer money between two local accounts; compensation is a pure
    resource compensation entry (the paper's fund-transfer example);
``ace``
    record a note in the weakly reversible space; compensation is a
    pure agent compensation entry;
``mixed``
    withdraw cash into the agent's purse; compensation must return the
    money *and* remove it from the purse — a mixed compensation entry;
``none``
    query the local directory into the strongly reversible space — no
    compensation needed at all (the paper's information-gathering
    example motivating transfer avoidance).

The step just before the decision step always registers one extra
agent compensation entry (``bench.tick``): its execution during
rollback is how the resumed agent learns the rollback happened — the
only paper-sanctioned channel for that information is the weakly
reversible space (Section 4.1).

The decision step rolls back to the configured savepoint until the
requested number of rollbacks has been observed, then finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.agent.agent import MobileAgent
from repro.agent.context import StepContext
from repro.compensation.registry import (
    agent_compensation,
    mixed_compensation,
    resource_compensation,
)
from repro.errors import UsageError

BANK = "bank"
DIRECTORY = "directory"


# ---------------------------------------------------------------------------
# Registered compensating operations used by tour workloads
# ---------------------------------------------------------------------------

@resource_compensation("bench.undo_transfer")
def undo_transfer(bank, params, ctx):
    """Compensate a fund transfer: move the money back (RCE)."""
    bank.transfer(params["dst"], params["src"], params["amount"],
                  compensating=True)


@agent_compensation("bench.forget_note")
def forget_note(wro, params, ctx):
    """Compensate a recorded note: drop it from the WRO space (ACE)."""
    notes = list(wro.get("notes", []))
    if params["note"] in notes:
        notes.remove(params["note"])
    wro["notes"] = notes


@agent_compensation("bench.tick")
def tick(wro, params, ctx):
    """Signal a completed rollback into the WRO space (ACE)."""
    wro["rolled_back"] = wro.get("rolled_back", 0) + 1


@mixed_compensation("bench.return_cash")
def return_cash(wro, bank, params, ctx):
    """Compensate a cash withdrawal: pay back and empty the purse (MCE).

    Needs the agent's purse (WRO) *and* the bank — the agent must be
    co-located with the resource, which is what makes steps of kind
    ``mixed`` force agent transfers during rollback.
    """
    purse = dict(wro.get("purse", {}))
    amount = purse.pop(params["node"], 0)
    bank.deposit(params["account"], amount)
    wro["purse"] = purse


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

@dataclass
class StepSpec:
    """One tour step."""

    node: str
    kind: str  # "rce" | "ace" | "mixed" | "none"
    amount: int = 10
    savepoint: Optional[str] = None  # constitute SP(id) at end of this step


@dataclass
class TourPlan:
    """A full tour: steps, decision node, rollback target and count."""

    steps: list[StepSpec]
    decision_node: str
    rollback_to: Optional[str] = None
    rollback_times: int = 1
    sro_ballast: int = 0  # bytes of inert strongly reversible payload
    wro_ballast: int = 0  # bytes of inert weakly reversible payload

    def savepoint_ids(self) -> list[str]:
        return [s.savepoint for s in self.steps if s.savepoint is not None]


def make_tour_plan(nodes: list[str], n_steps: int,
                   mixed_fraction: float = 0.0,
                   ace_fraction: float = 0.0,
                   none_fraction: float = 0.0,
                   savepoint_every: Optional[int] = None,
                   rollback_depth: Optional[int] = None,
                   rollback_times: int = 1,
                   sro_ballast: int = 0,
                   wro_ballast: int = 0) -> TourPlan:
    """Build a deterministic tour plan.

    ``mixed_fraction`` / ``ace_fraction`` / ``none_fraction`` of the
    steps (spread evenly, deterministic) get those kinds; the rest are
    ``rce``.  ``savepoint_every=k`` constitutes a savepoint after steps
    0, k, 2k, ...; the default places one only after step 0.
    ``rollback_depth`` picks the rollback target so that this many
    committed steps must be compensated (None → roll back to the first
    savepoint).
    """
    if n_steps < 2:
        raise UsageError("a tour needs at least 2 steps")
    kinds = ["rce"] * n_steps
    def _spread(fraction: float, kind: str, taken: set[int]) -> None:
        count = round(fraction * n_steps)
        if count <= 0:
            return
        stride = max(1, n_steps // count)
        placed = 0
        for i in range(0, n_steps):
            index = (i * stride + 1) % n_steps
            if placed >= count:
                break
            if index not in taken and index != 0:
                kinds[index] = kind
                taken.add(index)
                placed += 1
        # Fall back to any free slot if striding collided too often.
        for index in range(1, n_steps):
            if placed >= count:
                break
            if index not in taken:
                kinds[index] = kind
                taken.add(index)
                placed += 1

    taken: set[int] = set()
    _spread(mixed_fraction, "mixed", taken)
    _spread(ace_fraction, "ace", taken)
    _spread(none_fraction, "none", taken)

    steps = []
    for i in range(n_steps):
        node = nodes[i % len(nodes)]
        savepoint = None
        if savepoint_every is not None:
            if i % savepoint_every == 0:
                savepoint = f"sp-{i}"
        elif i == 0:
            savepoint = "sp-0"
        steps.append(StepSpec(node=node, kind=kinds[i], savepoint=savepoint))

    sp_ids = [s.savepoint for s in steps if s.savepoint]
    if not sp_ids:
        raise UsageError("plan has no savepoint to roll back to")
    if rollback_depth is None:
        target = sp_ids[0]
    else:
        # Steps after savepoint sp-i are i+1..n_steps-1 plus the aborted
        # decision step; committed steps to compensate = n_steps-1-i.
        wanted = max(0, n_steps - 1 - rollback_depth)
        candidates = [s.savepoint for s in steps
                      if s.savepoint is not None
                      and int(s.savepoint.split("-")[1]) <= wanted]
        if not candidates:
            raise UsageError(
                f"no savepoint allows rollback depth {rollback_depth}")
        target = candidates[-1]
    decision_node = nodes[n_steps % len(nodes)]
    return TourPlan(steps=steps, decision_node=decision_node,
                    rollback_to=target, rollback_times=rollback_times,
                    sro_ballast=sro_ballast, wro_ballast=wro_ballast)


# ---------------------------------------------------------------------------
# The tour agent
# ---------------------------------------------------------------------------

class TourAgent(MobileAgent):
    """Executes a :class:`TourPlan`; the workhorse of the benchmarks."""

    def __init__(self, agent_id: str, plan: TourPlan):
        super().__init__(agent_id)
        self.plan = plan
        self.sro["pos"] = 0
        if plan.sro_ballast:
            self.sro["ballast"] = b"s" * plan.sro_ballast
        if plan.wro_ballast:
            self.wro["ballast"] = b"w" * plan.wro_ballast

    # -- steps ---------------------------------------------------------------

    def run(self, ctx: StepContext) -> None:
        pos = self.sro["pos"]
        spec = self.plan.steps[pos]
        self._perform(ctx, spec, pos)
        if pos + 1 == len(self.plan.steps):
            # Last work step: register the rollback signal and head to
            # the decision node.
            ctx.log_agent_compensation("bench.tick", {})
            ctx.goto(self.plan.decision_node, "decide")
        else:
            ctx.goto(self.plan.steps[pos + 1].node, "run")
        self.sro["pos"] = pos + 1
        if spec.savepoint is not None:
            ctx.savepoint(spec.savepoint)

    def decide(self, ctx: StepContext) -> None:
        rolled = self.wro.get("rolled_back", 0)
        if (self.plan.rollback_to is not None
                and rolled < self.plan.rollback_times):
            ctx.rollback(self.plan.rollback_to)
        ctx.finish({
            "rolled_back": rolled,
            "notes": list(self.wro.get("notes", [])),
            "purse": dict(self.wro.get("purse", {})),
            "collected": list(self.sro.get("collected", [])),
        })

    # -- work kinds -------------------------------------------------------------

    def _perform(self, ctx: StepContext, spec: StepSpec, pos: int) -> None:
        if spec.kind == "rce":
            bank = ctx.resource(BANK)
            bank.transfer("merchant", "escrow", spec.amount)
            ctx.log_resource_compensation(
                "bench.undo_transfer",
                {"src": "merchant", "dst": "escrow", "amount": spec.amount},
                resource=BANK)
        elif spec.kind == "ace":
            note = f"note-{pos}-{ctx.node_name}"
            self.wro.setdefault("notes", []).append(note)
            ctx.log_agent_compensation("bench.forget_note", {"note": note})
        elif spec.kind == "mixed":
            bank = ctx.resource(BANK)
            bank.withdraw("merchant", spec.amount)
            purse = dict(self.wro.get("purse", {}))
            purse[ctx.node_name] = purse.get(ctx.node_name, 0) + spec.amount
            self.wro["purse"] = purse
            ctx.log_mixed_compensation(
                "bench.return_cash",
                {"node": ctx.node_name, "account": "merchant"},
                resource=BANK)
        elif spec.kind == "none":
            directory = ctx.resource(DIRECTORY)
            offers = directory.query("offers")
            self.sro.setdefault("collected", []).append(
                (ctx.node_name, len(offers)))
        else:  # pragma: no cover - plan generator controls kinds
            raise UsageError(f"unknown step kind {spec.kind!r}")
