"""World building, tour running and result extraction for benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.agent.packages import Protocol, RollbackMode
from repro.bench.workloads import BANK, DIRECTORY, TourAgent, TourPlan
from repro.log.modes import LoggingMode
from repro.node.runtime import AgentStatus, World
from repro.resources.bank import Bank, OverdraftPolicy
from repro.resources.directory import InfoDirectory
from repro.sim.timing import NetworkParams, TimingModel


def build_tour_world(n_nodes: int, seed: int = 0,
                     logging_mode: LoggingMode = LoggingMode.STATE,
                     timing: Optional[TimingModel] = None,
                     net_params: Optional[NetworkParams] = None) -> World:
    """A ring of nodes, each hosting a bank and a directory."""
    kwargs: dict[str, Any] = {"seed": seed, "logging_mode": logging_mode}
    if timing is not None:
        kwargs["timing"] = timing
    if net_params is not None:
        kwargs["net_params"] = net_params
    world = World(**kwargs)
    for i in range(n_nodes):
        node = world.add_node(f"n{i}")
        bank = Bank(BANK)
        bank.seed_account("merchant", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("escrow", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
        directory = InfoDirectory(DIRECTORY)
        directory.publish("offers", [{"item": "widget", "price": 10 + i}])
        node.add_resource(directory)
    return world


@dataclass
class TourResult:
    """Everything the bench tables need from one tour run."""

    status: AgentStatus
    result: Any
    sim_time: float
    finished_at: float
    steps_committed: int
    rollbacks: int
    compensation_txs: int
    step_transfers: int
    compensation_transfers: int
    resume_transfers: int
    step_transfer_bytes: int
    compensation_transfer_bytes: int
    rce_ship_messages: int
    rce_ship_bytes: int
    rollback_latency: float
    final_package_bytes: int
    metrics: dict[str, Any] = field(default_factory=dict)
    # Incremental-serialization instrumentation for the run: how many
    # log-entry pickles actually happened vs were satisfied from entry
    # blob caches, and how many snapshots took the structural fast path.
    serialization_stats: dict[str, int] = field(default_factory=dict)

    @property
    def rollback_agent_transfers(self) -> int:
        """Agent moves attributable to the rollback itself."""
        return self.compensation_transfers


def rollback_latencies(world: World) -> list[float]:
    """Initiation→completion latency of every rollback in the run.

    Pairs rollback-initiated/rollback-completed timeline events per
    agent in order; retried initiations (same rollback re-initiated
    after a crash restarted the aborting step) collapse onto the first
    initiation, matching how a user would experience the latency.
    """
    starts: dict[str, list[float]] = {}
    latencies: list[float] = []
    for time, kind, details in world.metrics.timeline:
        if kind == "rollback-initiated":
            starts.setdefault(details["agent"], []).append(time)
        elif kind == "rollback-completed":
            pending = starts.get(details["agent"])
            if pending:
                latencies.append(time - pending[0])
                starts[details["agent"]] = []
    return latencies


def run_tour(plan: TourPlan, n_nodes: int,
             mode: RollbackMode = RollbackMode.BASIC,
             protocol: Protocol = Protocol.BASIC,
             seed: int = 0,
             logging_mode: LoggingMode = LoggingMode.STATE,
             world: Optional[World] = None,
             max_events: int = 2_000_000) -> TourResult:
    """Run one tour to completion and harvest metrics."""
    from repro.storage import serialization

    if world is None:
        world = build_tour_world(n_nodes, seed=seed,
                                 logging_mode=logging_mode)
    agent = TourAgent(f"tour-{seed}-{mode.value}", plan)
    stats_before = serialization.stats()
    record = world.launch(agent, at=plan.steps[0].node, method="run",
                          mode=mode, protocol=protocol)
    world.run(max_events=max_events)
    serialization_stats = {
        key: value - stats_before[key]
        for key, value in serialization.stats().items()}
    metrics = world.metrics
    latencies = rollback_latencies(world)
    final_bytes = 0
    if record.final_agent is not None:
        from repro.storage.serialization import size_of
        final_bytes = size_of(record.final_agent)
    return TourResult(
        status=record.status,
        result=record.result,
        sim_time=world.sim.now,
        finished_at=(record.finished_at if record.finished_at is not None
                     else world.sim.now),
        steps_committed=record.steps_committed,
        rollbacks=record.rollbacks_completed,
        compensation_txs=record.compensation_txs,
        step_transfers=metrics.count("agent.transfers.step"),
        compensation_transfers=metrics.count("agent.transfers.compensation"),
        resume_transfers=metrics.count("agent.transfers.resume"),
        step_transfer_bytes=metrics.total_bytes("agent.transfers.step"),
        compensation_transfer_bytes=metrics.total_bytes(
            "agent.transfers.compensation"),
        rce_ship_messages=metrics.count("net.messages.rce-list"),
        rce_ship_bytes=metrics.total_bytes("net.rce-list"),
        rollback_latency=(sum(latencies) / len(latencies)) if latencies
        else 0.0,
        final_package_bytes=final_bytes,
        metrics=metrics.summary(),
        serialization_stats=serialization_stats,
    )


def format_table(headers: list[str], rows: list[list[Any]],
                 title: str = "") -> str:
    """Render an ASCII table (what the bench harness prints)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4f}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
