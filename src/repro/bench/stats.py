"""Summary statistics for seed sweeps.

Benches that sweep seeds (fault-tolerance, concurrency) report central
tendency and spread; this module provides the few estimators needed
without pulling in heavyweight dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import UsageError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric across runs."""

    n: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float
    ci95_half_width: float

    def format(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (f"n={self.n} mean={self.mean:.4f}±{self.ci95_half_width:.4f}"
                f"{suffix} p50={self.p50:.4f} p95={self.p95:.4f}"
                f" range=[{self.minimum:.4f}, {self.maximum:.4f}]")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise UsageError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise UsageError(f"q={q} out of range")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics with a normal-approximation 95% CI."""
    if not values:
        raise UsageError("summarize of empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        stdev = math.sqrt(variance)
        ci = 1.96 * stdev / math.sqrt(n)
    else:
        stdev = 0.0
        ci = 0.0
    return Summary(n=n, mean=mean, stdev=stdev,
                   minimum=float(min(values)),
                   p50=percentile(values, 50),
                   p95=percentile(values, 95),
                   maximum=float(max(values)),
                   ci95_half_width=ci)
