"""Evaluation report assembly.

Collects the ASCII tables the benches drop into ``benchmarks/results/``
into one markdown report, and renders per-run metric summaries.  Used
by maintainers to refresh the numbers quoted in EXPERIMENTS.md after
substrate changes.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.runtime import World

# Section order for the assembled report; unknown tables land at the end.
_SECTION_ORDER = (
    "fig1_execution", "fig2_log", "fig3_rollback", "fig4_basic",
    "fig5_optimized", "fig5_bytes_vs_size", "fig6_itinerary",
    "fig6_savepoints", "logsize_itinerary", "logsize_growth",
    "migration_log_share", "migration_network", "savepoint_overhead",
    "fault_tolerance", "fault_tolerance_seeds", "logging_modes_size",
    "baseline_scorecard", "baseline_savepoint_overhead",
    "prediction", "concurrent_agents", "rpc_decision_matrix",
    "rpc_crossover",
)


@dataclass
class ReportSection:
    """One table from the results directory."""

    name: str
    title: str
    body: str


def load_sections(results_dir: pathlib.Path) -> list[ReportSection]:
    """Load every ``*.txt`` table, in canonical section order."""
    sections = {}
    for path in sorted(results_dir.glob("*.txt")):
        text = path.read_text().strip()
        title = text.splitlines()[0] if text else path.stem
        sections[path.stem] = ReportSection(name=path.stem, title=title,
                                            body=text)
    ordered = [sections.pop(name) for name in _SECTION_ORDER
               if name in sections]
    ordered.extend(sections[name] for name in sorted(sections))
    return ordered


def assemble_report(results_dir: pathlib.Path,
                    heading: str = "Benchmark results") -> str:
    """Render all result tables as one markdown document."""
    sections = load_sections(results_dir)
    lines = [f"# {heading}", ""]
    if not sections:
        lines.append("*(no result tables found — run "
                     "`pytest benchmarks/ --benchmark-only` first)*")
        return "\n".join(lines)
    for section in sections:
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append("```")
        lines.append(section.body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def metrics_report(world: "World") -> str:
    """Markdown summary of one world's counters (debugging aid)."""
    lines = ["| counter | value |", "|---|---|"]
    for name, value in sorted(world.metrics.summary().items()):
        lines.append(f"| {name} | {value} |")
    return "\n".join(lines)


def write_report(results_dir: pathlib.Path,
                 out_path: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Assemble and write the report; returns the output path."""
    out_path = out_path or results_dir / "REPORT.md"
    out_path.write_text(assemble_report(results_dir) + "\n")
    return out_path
