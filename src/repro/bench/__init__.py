"""Benchmark support: workloads, harness, result tables.

The paper contains no measured evaluation ("will be evaluated in terms
of performance"), so this package provides the workload machinery that
evaluation would have used: parameterised *tour* workloads (an agent
visiting a chain of nodes, performing compensable work with a
controlled mix of operation-entry types, then rolling back), world
builders, and result extraction for the tables in ``benchmarks/``.
"""

from repro.bench.workloads import StepSpec, TourAgent, TourPlan, make_tour_plan
from repro.bench.harness import (
    TourResult,
    build_tour_world,
    format_table,
    rollback_latencies,
    run_tour,
)

__all__ = [
    "StepSpec",
    "TourPlan",
    "TourAgent",
    "make_tour_plan",
    "build_tour_world",
    "run_tour",
    "TourResult",
    "rollback_latencies",
    "format_table",
]
