"""Journal storage backends: CRC-framed append-only record streams.

Every backend stores an ordered sequence of opaque record payloads and
exposes the same five operations: ``append``, ``sync``, ``read_all``,
``truncate_records`` and ``close``.  The byte-oriented backends frame
each payload as ``<u32 length><u32 crc32><payload>`` — the same framing
discipline the rollback log uses for per-entry blobs — so a reader can
both detect corruption and tell *where* it sits:

* damage that extends to the physical end of the stream (a truncated
  header, a truncated payload, or a CRC-failed record that is the last
  one on disk) is a **torn tail**: the record the crash interrupted.
  ``read_all`` discards it and reports it, because write-ahead logging
  makes an interrupted final write an expected outcome, not an error;
* damage anywhere *before* the end means the journal cannot vouch for
  its own prefix — ``read_all`` raises
  :class:`~repro.errors.JournalCorrupt`.

``tear_tail`` and ``corrupt_record`` are fault-injection hooks for
tests and for the journal's own mid-barrier kill mode; they are not
part of the recovery path.
"""

from __future__ import annotations

import os
import sqlite3
import struct
import zlib
from typing import Optional

from repro.errors import JournalCorrupt, UsageError

_HEADER = struct.Struct("<II")


def frame(payload: bytes) -> bytes:
    """One framed record: ``<u32 length><u32 crc32><payload>``."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def parse_frames(buf: bytes, source: str) -> tuple[list[bytes], bool]:
    """Split ``buf`` into record payloads; apply the torn-tail rule.

    Returns ``(payloads, torn_tail)``.  Raises
    :class:`~repro.errors.JournalCorrupt` when a CRC failure sits
    before the physical end of the buffer.
    """
    payloads: list[bytes] = []
    offset, total = 0, len(buf)
    while offset < total:
        if offset + _HEADER.size > total:
            return payloads, True  # torn header at EOF
        length, crc = _HEADER.unpack_from(buf, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return payloads, True  # torn payload at EOF
        payload = bytes(buf[start:end])
        if zlib.crc32(payload) != crc:
            if end == total:
                return payloads, True  # CRC-failed final record
            raise JournalCorrupt(
                f"{source}: record {len(payloads)} failed its CRC check "
                f"before the journal tail — refusing to recover")
        payloads.append(payload)
        offset = end
    return payloads, False


class JournalBackend:
    """Interface every journal backend implements."""

    def append(self, payload: bytes) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Make every appended record durable (fsync point)."""

    def read_all(self) -> tuple[list[bytes], bool]:
        """Every intact record payload, plus a torn-tail flag."""
        raise NotImplementedError

    def truncate_records(self, count: int) -> None:
        """Discard everything after the first ``count`` records."""
        raise NotImplementedError

    def close(self) -> None:
        pass

    # -- fault injection (tests and kill_world's mid-barrier mode) ------------------

    def tear_tail(self, nbytes: int) -> None:
        """Physically truncate the stream by ``nbytes`` (torn write)."""
        raise NotImplementedError

    def corrupt_record(self, index: int) -> None:
        """Flip one payload byte of record ``index`` (bit rot)."""
        raise NotImplementedError


class MemoryJournal(JournalBackend):
    """In-RAM backend for tests: same framing, no durability."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def append(self, payload: bytes) -> None:
        self._buf += frame(payload)

    def read_all(self) -> tuple[list[bytes], bool]:
        return parse_frames(bytes(self._buf), "memory journal")

    def truncate_records(self, count: int) -> None:
        self._buf = self._buf[:_offset_of(bytes(self._buf), count)]

    def tear_tail(self, nbytes: int) -> None:
        del self._buf[len(self._buf) - min(nbytes, len(self._buf)):]

    def corrupt_record(self, index: int) -> None:
        offset = _offset_of(bytes(self._buf), index)
        self._buf[offset + _HEADER.size] ^= 0xFF

    @property
    def size_bytes(self) -> int:
        return len(self._buf)


class FileJournal(JournalBackend):
    """Append-only file backend with CRC-framed records.

    ``fsync`` policy: ``"commit"`` (default) makes :meth:`sync` — the
    epoch-commit point — an fsync; ``"always"`` additionally fsyncs
    every append (each setup op individually durable, slower);
    ``"never"`` only flushes to the OS (fast, survives process death
    but not power loss).
    """

    def __init__(self, path, fsync: str = "commit"):
        if fsync not in ("commit", "always", "never"):
            raise UsageError(f"unknown fsync policy {fsync!r} "
                             f"(use 'commit', 'always' or 'never')")
        self.path = os.fspath(path)
        self.fsync = fsync
        self._file = open(self.path, "ab")

    def append(self, payload: bytes) -> None:
        self._file.write(frame(payload))
        if self.fsync == "always":
            self._file.flush()
            os.fsync(self._file.fileno())

    def sync(self) -> None:
        self._file.flush()
        if self.fsync != "never":
            os.fsync(self._file.fileno())

    def read_all(self) -> tuple[list[bytes], bool]:
        self._file.flush()
        with open(self.path, "rb") as fh:
            return parse_frames(fh.read(), self.path)

    def truncate_records(self, count: int) -> None:
        self._file.flush()
        with open(self.path, "rb") as fh:
            buf = fh.read()
        os.truncate(self.path, _offset_of(buf, count))
        self._reopen()

    def tear_tail(self, nbytes: int) -> None:
        self._file.flush()
        size = os.path.getsize(self.path)
        os.truncate(self.path, max(0, size - nbytes))
        self._reopen()

    def corrupt_record(self, index: int) -> None:
        self._file.flush()
        with open(self.path, "rb") as fh:
            buf = fh.read()
        offset = _offset_of(buf, index)
        with open(self.path, "r+b") as fh:
            fh.seek(offset + _HEADER.size)
            byte = fh.read(1)
            fh.seek(offset + _HEADER.size)
            fh.write(bytes([byte[0] ^ 0xFF]))
        self._reopen()

    def _reopen(self) -> None:
        self._file.close()
        self._file = open(self.path, "ab")

    def close(self) -> None:
        self._file.close()

    @property
    def size_bytes(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)


class SqliteJournal(JournalBackend):
    """Sqlite-backed journal: one row per record, CRC column per row.

    The torn-tail rule carries over: a CRC-failed *last* row is the
    interrupted write and is discarded; a failed earlier row raises
    :class:`~repro.errors.JournalCorrupt`.  Durability rides sqlite's
    own transaction machinery (:meth:`sync` commits).
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._db = sqlite3.connect(self.path)
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS records ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " crc INTEGER NOT NULL,"
            " payload BLOB NOT NULL)")
        self._db.commit()

    def append(self, payload: bytes) -> None:
        self._db.execute(
            "INSERT INTO records (crc, payload) VALUES (?, ?)",
            (zlib.crc32(payload), sqlite3.Binary(payload)))

    def sync(self) -> None:
        self._db.commit()

    def read_all(self) -> tuple[list[bytes], bool]:
        rows = self._db.execute(
            "SELECT crc, payload FROM records ORDER BY seq").fetchall()
        payloads: list[bytes] = []
        for i, (crc, payload) in enumerate(rows):
            payload = bytes(payload)
            if zlib.crc32(payload) != crc:
                if i == len(rows) - 1:
                    return payloads, True  # torn final row
                raise JournalCorrupt(
                    f"{self.path}: record {i} failed its CRC check "
                    f"before the journal tail — refusing to recover")
            payloads.append(payload)
        return payloads, False

    def truncate_records(self, count: int) -> None:
        keep = self._db.execute(
            "SELECT seq FROM records ORDER BY seq").fetchall()[:count]
        floor = keep[-1][0] if keep else 0
        self._db.execute("DELETE FROM records WHERE seq > ?", (floor,))
        self._db.commit()

    def tear_tail(self, nbytes: int) -> None:
        row = self._db.execute(
            "SELECT seq, payload FROM records ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return
        seq, payload = row
        torn = bytes(payload)[:max(0, len(payload) - nbytes)]
        self._db.execute("UPDATE records SET payload = ? WHERE seq = ?",
                         (sqlite3.Binary(torn), seq))
        self._db.commit()

    def corrupt_record(self, index: int) -> None:
        rows = self._db.execute(
            "SELECT seq, payload FROM records ORDER BY seq").fetchall()
        seq, payload = rows[index]
        payload = bytearray(payload)
        payload[0] ^= 0xFF
        self._db.execute("UPDATE records SET payload = ? WHERE seq = ?",
                         (sqlite3.Binary(bytes(payload)), seq))
        self._db.commit()

    def close(self) -> None:
        self._db.commit()
        self._db.close()

    @property
    def size_bytes(self) -> int:
        row = self._db.execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM records"
        ).fetchone()
        return int(row[0])


def _offset_of(buf: bytes, count: int) -> int:
    """Byte offset just past the first ``count`` framed records."""
    offset = 0
    for _ in range(count):
        if offset + _HEADER.size > len(buf):
            raise UsageError(f"journal holds fewer than {count} records")
        length, _crc = _HEADER.unpack_from(buf, offset)
        offset += _HEADER.size + length
    return offset


def open_backend(spec: Optional[str] = None, **kwargs) -> JournalBackend:
    """Convenience factory: ``None``/``"memory"``, a ``.db``/``.sqlite``
    path (sqlite), or any other path (append-only file)."""
    if spec is None or spec == "memory":
        return MemoryJournal()
    path = os.fspath(spec)
    if path.endswith((".db", ".sqlite")):
        return SqliteJournal(path)
    return FileJournal(path, **kwargs)
