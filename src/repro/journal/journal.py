"""The write-ahead world journal.

A :class:`WorldJournal` durably records everything needed to
reconstruct a run, in three channels:

* the **config record** — one record, written at world construction,
  holding the seeded configuration the world was built from;
* the **op channel** — setup and fault-injection commands issued
  through the coordinator facade (``add_node``, resource installation,
  ``launch``, crash plans, ``kill_shard``, alternates).  Ops are
  appended and synced immediately: they are the *inputs* a resumed run
  re-executes, so losing one would fork history;
* the **payload channel** — per-epoch effect records (stable-store
  mutations, durable-queue ops, savepoint frames, bridge routings,
  agent-record merges) buffered in memory and flushed as a group at
  each epoch barrier, followed by a **commit marker** carrying the
  barrier time and a cheap execution digest, then an fsync.  This is
  classic group commit: a record below a commit marker is durable; a
  record above the last marker belongs to the epoch the crash
  destroyed and is discarded on recovery.

Because the simulation is deterministic, recovery does not need to
reconstruct kernel state from the payload records (that would amount
to re-pickling the world): :func:`~repro.journal.resume.resume_world`
rebuilds the world from the config, re-applies the op channel, re-runs
deterministically to the frontier barrier and *verifies* the committed
digest.  The payload channel is the durable audit trail that makes the
journal self-describing — every effect of every committed epoch is on
disk, in order, reusing the per-entry framed-blob discipline of
:mod:`repro.storage.serialization` (append-only; nothing is ever
re-serialized wholesale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import JournalCorrupt, UsageError
from repro.journal.backends import JournalBackend, MemoryJournal
from repro.storage.serialization import capture, restore

#: Record kinds of the op channel, in the order constraints matter: an
#: op after the last commit marker is still applied (it was issued —
#: and synced — after that barrier), payload records there are not.
OP_KINDS = frozenset({
    "add_node", "add_resource", "share_resource", "set_alternates",
    "ft_alternates", "launch", "crash_plans", "kill_shard",
})

#: Payload-channel record kinds (effect audit; never re-applied).
PAYLOAD_KINDS = frozenset({
    "store", "queue", "savepoint", "bridge", "record-merge",
})


def encode_record(kind: str, data: dict[str, Any]) -> bytes:
    return capture((kind, data))


def decode_record(payload: bytes) -> tuple[str, dict[str, Any]]:
    try:
        kind, data = restore(payload)
    except Exception as exc:
        raise JournalCorrupt(
            f"journal record failed to decode: {exc}") from exc
    return kind, data


@dataclass
class RecoveredRun:
    """What :meth:`WorldJournal.recover` salvages from the backend."""

    config: dict[str, Any]
    #: Every kept record after the config one, in journal order.
    entries: list[tuple[str, dict[str, Any]]]
    #: The last commit marker's data (``barrier``/``digest``/``commit``),
    #: or None when the crash predates the first epoch commit.
    frontier: Optional[dict[str, Any]]
    #: Records kept, config included — the truncation point.
    kept_records: int
    #: Intact-but-uncommitted records rolled back with the torn epoch.
    discarded_records: int
    torn_tail: bool

    @property
    def frontier_barrier(self) -> Optional[float]:
        return None if self.frontier is None else self.frontier["barrier"]


class WorldJournal:
    """Group-commit write-ahead journal of one world's execution.

    Records three channels into one append-only backend: the world's
    config (once, at construction), the op channel (topology changes,
    launches, crash/kill plans — synced immediately), and per-epoch
    payload notes (stable-store mutations, durable-queue ops,
    savepoint frames, bridge routings, record merges) buffered until
    the barrier's digest-carrying commit marker flushes them as one
    group commit.  :func:`~repro.journal.resume_world` rebuilds a
    world from all three.  Under the process backend's optimistic
    lockstep, a speculative epoch's notes are buffered only after its
    read log survives conflict detection — an invalidated speculation
    never reaches the backend.

    Args:
        backend: A :class:`~repro.journal.MemoryJournal`,
            :class:`~repro.journal.FileJournal` or
            :class:`~repro.journal.SqliteJournal` (or anything with
            the backend protocol); defaults to an in-RAM backend.

    ``armed`` gates every write: a journal attached to a world being
    rebuilt for resume stays disarmed while the journaled prefix
    replays (the records already exist), then
    :meth:`rearm` truncates the backend to the recovery frontier and
    re-enables appends for the continuation.

    Raises:
        JournalError: Writes on a journal whose config record is
            missing where required, or recovery on an empty journal.
        JournalCorrupt: Interior frame damage discovered at recovery.
    """

    def __init__(self, backend: Optional[JournalBackend] = None):
        self.backend = backend if backend is not None else MemoryJournal()
        self.armed = True
        self.config_written = False
        self.commits = 0
        self.records_written = 0
        self.kind_counts: dict[str, int] = {}
        self._buffer: list[bytes] = []

    # -- write side --------------------------------------------------------------

    def _append(self, kind: str, data: dict[str, Any]) -> None:
        self.backend.append(encode_record(kind, data))
        self.records_written += 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1

    def record_config(self, **data: Any) -> None:
        """The one-per-journal world configuration record."""
        if self.config_written:
            raise UsageError("journal already holds a config record")
        self._append("config", data)
        self.backend.sync()
        self.config_written = True

    def record_op(self, op: str, **data: Any) -> None:
        """Append one op-channel record, immediately durable."""
        if op not in OP_KINDS:
            raise UsageError(f"unknown op kind {op!r}")
        self._append(op, data)
        self.backend.sync()

    def buffer(self, kind: str, **data: Any) -> None:
        """Stage one payload-channel record for the open epoch."""
        if kind not in PAYLOAD_KINDS:
            raise UsageError(f"unknown payload kind {kind!r}")
        self._buffer.append(encode_record(kind, data))
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1

    def buffered(self) -> int:
        return len(self._buffer)

    def commit_epoch(self, barrier: float, digest: tuple) -> None:
        """Group commit: flush the epoch's payload, mark, fsync."""
        for payload in self._buffer:
            self.backend.append(payload)
            self.records_written += 1
        self._buffer.clear()
        self._append("epoch", {"barrier": barrier, "digest": digest,
                               "commit": self.commits})
        self.backend.sync()
        self.commits += 1

    def commit_torn(self, barrier: float, digest: tuple,
                    tear_bytes: int = 7) -> None:
        """Fault injection: a commit whose marker write was interrupted.

        The epoch's payload records land intact; the commit marker is
        physically torn (``tear_bytes`` short), exactly what a crash
        between the marker write and its fsync leaves behind.  Recovery
        must discard the whole epoch.
        """
        for payload in self._buffer:
            self.backend.append(payload)
            self.records_written += 1
        self._buffer.clear()
        self._append("epoch", {"barrier": barrier, "digest": digest,
                               "commit": self.commits})
        self.backend.sync()
        self.backend.tear_tail(tear_bytes)

    # -- recovery side ----------------------------------------------------------

    def recover(self) -> RecoveredRun:
        """Parse the backend and decide the recovery frontier.

        Keeps the config record, every record up to the last commit
        marker, and any op-channel records after it (ops are synced at
        issue time and re-apply in order); uncommitted payload records
        are rolled back with their torn epoch.
        """
        payloads, torn = self.backend.read_all()
        records = [decode_record(p) for p in payloads]
        if not records or records[0][0] != "config":
            raise JournalCorrupt("journal has no config record")
        config = records[0][1]
        entries = records[1:]
        last_commit = None
        for i, (kind, _data) in enumerate(entries):
            if kind == "epoch":
                last_commit = i
        keep = 0 if last_commit is None else last_commit + 1
        for kind, _data in entries[keep:]:
            if kind not in OP_KINDS:
                break
            keep += 1
        frontier = None if last_commit is None else entries[last_commit][1]
        return RecoveredRun(
            config=config,
            entries=entries[:keep],
            frontier=frontier,
            kept_records=keep + 1,
            discarded_records=len(entries) - keep + (1 if torn else 0),
            torn_tail=torn,
        )

    def disarm(self) -> None:
        """Suspend appends (used while a resumed world replays)."""
        self.armed = False
        self.config_written = True

    def rearm(self, recovered: RecoveredRun) -> None:
        """Truncate to the frontier and re-enable appends."""
        self.backend.truncate_records(recovered.kept_records)
        self._buffer.clear()
        self.records_written = recovered.kept_records
        self.commits = sum(1 for kind, _ in recovered.entries
                           if kind == "epoch")
        self.config_written = True
        self.armed = True

    # -- inspection --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "commits": self.commits,
            "records_written": self.records_written,
            "buffered": len(self._buffer),
            "kinds": dict(self.kind_counts),
            "bytes": getattr(self.backend, "size_bytes", None),
        }

    def close(self) -> None:
        self.backend.close()
