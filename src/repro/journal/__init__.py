"""Durable write-ahead world journal and crash-resumable coordinator.

See :mod:`repro.journal.journal` for the write side (group commit at
epoch barriers), :mod:`repro.journal.backends` for the storage
backends (in-memory, CRC-framed append-only file, sqlite) and
:mod:`repro.journal.resume` for recovery by deterministic replay.
"""

from repro.journal.backends import (
    FileJournal,
    JournalBackend,
    MemoryJournal,
    SqliteJournal,
    open_backend,
)
from repro.journal.journal import RecoveredRun, WorldJournal
from repro.journal.resume import resume_world

__all__ = [
    "WorldJournal", "RecoveredRun", "resume_world", "JournalBackend",
    "MemoryJournal", "FileJournal", "SqliteJournal", "open_backend",
]
