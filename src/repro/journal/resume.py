"""Crash recovery: rebuild a world from its journal and continue.

The recovery structure is checkpoint-then-replay: the journal holds
the *inputs* of the run (seeded config + the op channel) plus one
commit marker per epoch barrier.  :func:`resume_world`

1. parses the journal and picks the recovery frontier — the last
   committed barrier (:meth:`~repro.journal.journal.WorldJournal.
   recover` already applied the torn-tail rule);
2. rebuilds the world from the config record, with the journal
   attached but **disarmed**, so the capture hooks are wired for the
   continuation without double-writing the replayed prefix;
3. re-applies the op channel in journal order, interleaved with
   deterministic re-execution of the journaled *barrier sequence* (the
   run drivers expose ``_replay``, which walks the committed barriers
   verbatim — *not* ``until``, which would run one extra same-time
   epoch and fork the schedule, and not a stop-value, which is
   ambiguous when two commits land on the same barrier instant);
4. verifies the frontier digest — per-shard event counts at the
   committed barrier — and raises
   :class:`~repro.errors.JournalDiverged` on any mismatch;
5. truncates the journal to the frontier, re-arms it, and returns the
   world, positioned to continue exactly where the commit left it.

Because the heavily-tested determinism invariant makes re-execution
bit-identical, the resumed run's outcomes, per-bank effect sums and
exactly-once ledger state match an uninterrupted run of the same
program — the property the crash-resume differential axis asserts on
all three execution backends.
"""

from __future__ import annotations

from typing import Any

from repro.errors import JournalDiverged, UsageError
from repro.journal.journal import OP_KINDS, RecoveredRun, WorldJournal
from repro.storage.serialization import restore


def resume_world(journal: WorldJournal):
    """Rebuild the journaled world and replay it to the last commit.

    Re-opens a journal written by a crashed (or killed) run: rebuilds
    the world from the config record (any backend — ``World``,
    ``ShardedWorld``, ``ProcShardedWorld`` — with its recorded knobs,
    including ``lockstep`` and the IPC settings), re-applies the op
    channel (topology, launches, crash/kill plans), deterministically
    re-executes the committed barrier sequence, verifies the event
    digest of every replayed barrier, then re-arms the journal so the
    returned world continues journaling where the crash cut off.
    Torn tails (a commit marker interrupted mid-write, e.g.
    ``kill_world(phase="barrier")``) are discarded: recovery falls
    back to the last *complete* group commit.

    Args:
        journal: The :class:`WorldJournal` to recover — typically
            constructed over the same backend file/db the crashed run
            wrote.

    Returns:
        The rebuilt world, positioned exactly at the recovery
        frontier.  Caller owns closing it.

    Raises:
        JournalCorrupt: Frame damage *before* the physical tail (torn
            tails are tolerated; interior damage is not).
        JournalDiverged: The replayed execution's digest differs from
            the committed one — the environment or code no longer
            reproduces the journaled run.
        JournalError: An empty/config-less journal.
    """
    recovered = journal.recover()
    journal.disarm()
    world = _build_world(recovered.config, journal)
    try:
        barriers: list[float] = []
        frontier: dict[str, Any] | None = None
        for kind, data in recovered.entries:
            if kind == "epoch":
                barriers.append(data["barrier"])
                frontier = data
            elif kind in OP_KINDS:
                if barriers:
                    world.run(_replay=barriers)
                    barriers = []
                _apply_op(world, kind, data)
            # payload records are the audit trail; replay re-creates
            # their effects by re-execution.
        if barriers:
            world.run(_replay=barriers)
        if frontier is not None:
            _verify_frontier(world, frontier)
    except BaseException:
        if hasattr(world, "close"):
            world.close()
        raise
    journal.rearm(recovered)
    return world


def _build_world(config: dict[str, Any], journal: WorldJournal):
    from repro.node.procshard import ProcShardedWorld
    from repro.node.runtime import World
    from repro.node.sharded import ShardedWorld

    backend = config.get("backend")
    live = config.get("live_attach")
    if live is not None:
        raise UsageError(
            f"journal was attached to an already-running world (at "
            f"t={live.get('at')}, {live.get('events_processed')} events "
            f"in) and lacks the run's prefix — it is a telemetry/audit "
            f"journal, not a resumable one")
    kwargs = restore(config["world_kwargs"])
    if backend == "world":
        return World(seed=config["seed"], journal=journal,
                     journal_epoch=config["journal_epoch"], **kwargs)
    if backend == "sharded":
        return ShardedWorld(n_shards=config["n_shards"],
                            seed=config["seed"], epoch=config["epoch"],
                            lockstep=config.get("lockstep", "auto"),
                            journal=journal, **kwargs)
    if backend == "proc":
        from repro.node.shmring import DEFAULT_RING_SIZE
        return ProcShardedWorld(n_shards=config["n_shards"],
                                seed=config["seed"], epoch=config["epoch"],
                                start_method=config["start_method"],
                                lockstep=config["lockstep"],
                                ipc=config.get("ipc", "shm"),
                                ring_size=config.get("ring_size",
                                                     DEFAULT_RING_SIZE),
                                journal=journal, **kwargs)
    raise UsageError(f"journal config names unknown backend {backend!r}")


def _verify_frontier(world, commit: dict[str, Any]) -> None:
    digest = world._journal_digest()
    committed = tuple(commit["digest"])
    if tuple(digest) != committed:
        raise JournalDiverged(
            f"replay to barrier {commit['barrier']} produced digest "
            f"{tuple(digest)}, journal committed {committed} — the "
            f"journaled inputs no longer reproduce the committed run")


def _apply_op(world, kind: str, data: dict[str, Any]) -> None:
    if kind == "add_node":
        shard = data.get("shard")
        if shard is None:
            world.add_node(data["name"])
        else:
            world.add_node(data["name"], shard=shard)
    elif kind == "add_resource":
        world.node(data["node"]).add_resource(restore(data["blob"]))
    elif kind == "share_resource":
        node = world.node(data["node"])
        if hasattr(node, "share_resource_from"):  # worker-process proxy
            node.share_resource_from(data["from_node"], data["name"])
        else:
            source = world.node(data["from_node"])
            node.share_resource(source.get_resource(data["name"]))
    elif kind == "set_alternates":
        world.set_alternates(data["node"], *data["alternates"])
    elif kind == "ft_alternates":
        world.ft.set_alternates(data["node"], *data["alternates"])
    elif kind == "launch":
        agent, at, method, kwargs = restore(data["bundle"])
        world.launch(agent, at=at, method=method, **kwargs)
    elif kind == "crash_plans":
        world.apply_crash_plans(restore(data["blob"]))
    elif kind == "kill_shard":
        world.kill_shard(data["shard"], at=data["at"],
                         restart_at=data["restart_at"])
    else:  # pragma: no cover - OP_KINDS is the gate
        raise UsageError(f"cannot replay op {kind!r}")


__all__ = ["resume_world", "RecoveredRun"]
