"""Structured tool-agent scenarios with semantic compensations.

The scenario pack pairs the rollback machinery with DART-style
*semantic* compensations and per-step recoverability annotations
(``exact`` / ``semantic`` / ``unrecoverable`` — see
:class:`repro.log.entries.Recoverability`): refunds that keep a fee,
reservations that release with a penalty, promises that can only be
cancelled by notification, and shipments nothing can take back —
the rollback driver ratchets past those to the nearest savepoint.

Importing this package registers the ``scn.*`` compensating operations
in the process-global registry (workers re-register on unpickle import,
so scenario agents run on every backend).  The seeded workload
generator over these scenarios lives in :mod:`repro.fuzz`.
"""

from repro.scenarios import ops
from repro.scenarios.agent import (
    CUSTOMER_SEED,
    OP_KINDS,
    SEMANTIC_OPS,
    SHARED_ACCOUNTS,
    ScenarioAgent,
    StepSpec,
)
from repro.scenarios.ops import INJECT_BUG_ENV

__all__ = [
    "CUSTOMER_SEED",
    "INJECT_BUG_ENV",
    "OP_KINDS",
    "SEMANTIC_OPS",
    "SHARED_ACCOUNTS",
    "ScenarioAgent",
    "StepSpec",
    "ops",
]
