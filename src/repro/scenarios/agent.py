"""The scenario tour agent: executes a generated itinerary plan.

A plan is a list of :class:`StepSpec` positions.  Six forward
operations exercise the three compensation shapes plus the three
recoverability levels:

========== =========================== ===============
op         compensation                recoverability
========== =========================== ===============
purchase   full refund (RCE)           exact
voucher    refund + void (MCE)         exact
book       refund minus fee (RCE)      semantic
reserve    release with penalty (RCE)  semantic
promise    cancellation notice (ACE)   semantic
ship       none — goods left the dock  unrecoverable
========== =========================== ===============

Every compensatable step also logs ``scn.mark_undone`` (the rollback
guard and residue ledger).  A ``ship`` step constitutes a *ratchet*
savepoint ``rt<pos>`` right after itself: a later rollback across the
ship step is adjusted up to that ratchet by the driver's
recoverability check (:meth:`RollbackLog.choose_rollback_point`).

A ``"rollback"`` plan position fires ``ctx.rollback(target)`` exactly
once: its guard checks whether the preceding plan position is already
in ``wro["undone"]`` — the weakly reversible signal the compensations
wrote — and becomes a plain hop on re-execution.  Plan generators must
guarantee the preceding position is a compensatable op step so the
guard always trips (see :func:`repro.fuzz.generator.validate_case`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import repro.scenarios.ops  # noqa: F401  (registers the scn.* operations)
from repro.agent.agent import MobileAgent
from repro.errors import UsageError
from repro.log.entries import Recoverability

#: Forward operations a plan position may carry (plus "rollback").
OP_KINDS = ("purchase", "voucher", "book", "reserve", "promise", "ship")

#: Steps whose compensation leaves a semantic residue.
SEMANTIC_OPS = ("book", "reserve", "promise")

#: Every node bank seeds these shared accounts at zero.
SHARED_ACCOUNTS = ("merchant", "escrow-pool", "fees", "penalties")

#: Per-node opening balance of each agent's customer account.
CUSTOMER_SEED = 100_000


@dataclass
class StepSpec:
    """One plan position of a scenario itinerary (JSON-round-trippable)."""

    op: str                       # OP_KINDS entry, or "rollback"
    node: str
    amount: int = 0
    fee: int = 0
    penalty: int = 0
    tag: str = ""
    savepoint: bool = False
    target: Optional[str] = None  # rollback only: requested savepoint id

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {"op": self.op, "node": self.node}
        for key in ("amount", "fee", "penalty"):
            if getattr(self, key):
                data[key] = getattr(self, key)
        if self.tag:
            data["tag"] = self.tag
        if self.savepoint:
            data["savepoint"] = True
        if self.target is not None:
            data["target"] = self.target
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "StepSpec":
        return cls(op=data["op"], node=data["node"],
                   amount=data.get("amount", 0), fee=data.get("fee", 0),
                   penalty=data.get("penalty", 0), tag=data.get("tag", ""),
                   savepoint=data.get("savepoint", False),
                   target=data.get("target"))


class ScenarioAgent(MobileAgent):
    """Executes a :class:`StepSpec` plan; rolls back where told to."""

    def __init__(self, agent_id: str, plan):
        super().__init__(agent_id)
        from repro.scenarios.ops import ensure_registered
        ensure_registered()  # registry resets must not orphan scn.* logs
        self.plan = list(plan)
        self.customer = f"cust-{agent_id}"
        self.sro["pos"] = 0

    def step(self, ctx):
        pos = self.sro["pos"]
        spec = self.plan[pos]
        if spec.op == "rollback":
            if (pos - 1) not in self.wro.get("undone", ()):
                ctx.rollback(spec.target)  # never returns
            # Guard set: the rollback already ran — plain hop onward.
        else:
            self._execute(ctx, pos, spec)
        self.sro["pos"] = pos + 1
        if pos + 1 < len(self.plan):
            ctx.goto(self.plan[pos + 1].node, "step")
        else:
            ctx.finish(self._summary())
        if spec.savepoint and spec.op != "rollback":
            ctx.savepoint(f"sp{pos}")
        if spec.op == "ship":
            # The ratchet: the nearest state a rollback from above can
            # reach once the goods have left the dock.
            ctx.savepoint(f"rt{pos}")

    def _execute(self, ctx, pos: int, spec: StepSpec) -> None:
        bank = ctx.resource("bank")
        cust = self.customer
        if spec.op == "purchase":
            bank.transfer(cust, "merchant", spec.amount)
            ctx.log_resource_compensation(
                "scn.undo_purchase",
                {"customer": cust, "amount": spec.amount}, resource="bank")
            ctx.log_agent_compensation("scn.mark_undone", {"step": pos})
            ctx.annotate_recoverability(Recoverability.EXACT)
        elif spec.op == "voucher":
            bank.transfer(cust, "merchant", spec.amount)
            self.wro.setdefault("vouchers", []).append(f"{pos}:{spec.tag}")
            ctx.log_mixed_compensation(
                "scn.refund_voucher",
                {"customer": cust, "amount": spec.amount, "step": pos},
                resource="bank")
            ctx.log_agent_compensation("scn.mark_undone", {"step": pos})
            ctx.annotate_recoverability(Recoverability.EXACT)
        elif spec.op == "book":
            bank.transfer(cust, "merchant", spec.amount)
            ctx.log_resource_compensation(
                "scn.refund_minus_fee",
                {"customer": cust, "amount": spec.amount, "fee": spec.fee},
                resource="bank")
            ctx.log_agent_compensation(
                "scn.mark_undone", {"step": pos, "fee": spec.fee})
            ctx.annotate_recoverability(Recoverability.SEMANTIC)
        elif spec.op == "reserve":
            bank.transfer(cust, "escrow-pool", spec.amount)
            ctx.log_resource_compensation(
                "scn.release_with_penalty",
                {"customer": cust, "amount": spec.amount,
                 "penalty": spec.penalty}, resource="bank")
            ctx.log_agent_compensation(
                "scn.mark_undone", {"step": pos, "penalty": spec.penalty})
            ctx.annotate_recoverability(Recoverability.SEMANTIC)
        elif spec.op == "promise":
            self.wro.setdefault("promises", []).append(f"{pos}:{spec.tag}")
            ctx.log_agent_compensation(
                "scn.cancel_notice", {"step": pos, "tag": spec.tag})
            ctx.log_agent_compensation("scn.mark_undone", {"step": pos})
            ctx.annotate_recoverability(Recoverability.SEMANTIC)
        elif spec.op == "ship":
            bank.transfer(cust, "merchant", spec.amount)
            ctx.annotate_recoverability(Recoverability.UNRECOVERABLE)
        else:
            raise UsageError(f"unknown scenario op {spec.op!r}")

    def _summary(self) -> dict[str, Any]:
        return {
            "pos": self.sro["pos"],
            "undone": list(self.wro.get("undone", [])),
            "vouchers": list(self.wro.get("vouchers", [])),
            "voided": list(self.wro.get("voided", [])),
            "promises": list(self.wro.get("promises", [])),
            "notices": list(self.wro.get("notices", [])),
            "fees_lost": self.wro.get("fees_lost", 0),
            "penalties_lost": self.wro.get("penalties_lost", 0),
        }
