"""Semantic compensating operations for the scenario pack.

The paper's examples compensate *exactly* (an undone transfer restores
the original balances bit for bit).  Real tool-agent workflows rarely
get that luxury — DART's observation is that compensations are usually
*semantic*: they restore an acceptable state, and the difference is a
residue the workflow accepts as the price of rolling back.  This module
registers the three canonical shapes:

* **refund minus fees** (``scn.refund_minus_fee``) — a booking refund
  keeps a non-refundable handling fee;
* **un-reserve with penalty** (``scn.release_with_penalty``) — an
  escrowed reservation releases minus a cancellation penalty;
* **compensate by notification** (``scn.cancel_notice``) — a promise
  cannot be unmade, only cancelled by a message.

Everything here is module-level: spawn workers resolve agents and
operations by reference (pickle-by-name), so importing this module in
any process registers the ``scn.*`` names in that process's registry.

Account conventions (every scenario node hosts a ``Bank`` named
``"bank"``): per-agent customer accounts ``cust-<agent_id>``, and the
shared ``merchant`` / ``escrow-pool`` / ``fees`` / ``penalties``
accounts, all overdraft-allowed so generated workloads never wedge on
balance checks.
"""

from __future__ import annotations

import os

from repro.compensation.registry import (
    GLOBAL_REGISTRY,
    agent_compensation,
    mixed_compensation,
    resource_compensation,
)

#: Fault-injection knob for the fuzzer's self-test: set to
#: ``"refund-full"`` to make :func:`refund_minus_fee` deliberately
#: refund the whole amount (ignoring the non-refundable fee).  Read at
#: compensation-execution time and inherited by spawn workers, so the
#: bug manifests identically on every backend — the model oracle, which
#: never reads it, is what catches it.
INJECT_BUG_ENV = "REPRO_FUZZ_INJECT_BUG"


def _injected_bug() -> str:
    return os.environ.get(INJECT_BUG_ENV, "")


@resource_compensation("scn.undo_purchase")
def undo_purchase(bank, params, ctx):
    """Exact compensation: the full purchase amount flows back."""
    bank.transfer("merchant", params["customer"], params["amount"],
                  compensating=True)


@resource_compensation("scn.refund_minus_fee")
def refund_minus_fee(bank, params, ctx):
    """Semantic compensation: refund a booking minus the handling fee."""
    amount, fee = params["amount"], params["fee"]
    if _injected_bug() == "refund-full":
        fee = 0  # deliberately wrong: the fee is non-refundable
    bank.transfer("merchant", params["customer"], amount - fee,
                  compensating=True)
    if fee:
        bank.transfer("merchant", "fees", fee, compensating=True)


@resource_compensation("scn.release_with_penalty")
def release_with_penalty(bank, params, ctx):
    """Semantic compensation: release a reservation, keep a penalty."""
    amount, penalty = params["amount"], params["penalty"]
    bank.transfer("escrow-pool", params["customer"], amount - penalty,
                  compensating=True)
    if penalty:
        bank.transfer("escrow-pool", "penalties", penalty,
                      compensating=True)


@agent_compensation("scn.cancel_notice")
def cancel_notice(wro, params, ctx):
    """Compensate by notification: a promise is cancelled, not unmade."""
    wro.setdefault("notices", []).append(
        "cancelled:{}:{}".format(params["step"], params["tag"]))


@agent_compensation("scn.mark_undone")
def mark_undone(wro, params, ctx):
    """Record that plan position ``step`` was rolled back.

    The ``undone`` list doubles as the scenario agent's rollback guard
    (the weakly reversible signal that survives the rollback, exactly
    as the paper's Section 4.1 requires) and as the semantic-residue
    ledger: lost fees and penalties accumulate here so the outcome
    surface states the price that was paid.
    """
    wro.setdefault("undone", []).append(params["step"])
    if params.get("fee"):
        wro["fees_lost"] = wro.get("fees_lost", 0) + params["fee"]
    if params.get("penalty"):
        wro["penalties_lost"] = (wro.get("penalties_lost", 0)
                                 + params["penalty"])


@mixed_compensation("scn.refund_voucher")
def refund_voucher(wro, bank, params, ctx):
    """Mixed compensation: refund the voucher and void it in the WRO."""
    bank.transfer("merchant", params["customer"], params["amount"],
                  compensating=True)
    wro.setdefault("voided", []).append(params["step"])


#: The decoration-time registrations, kept for :func:`ensure_registered`.
_SCENARIO_OPS = tuple(
    op for name, op in GLOBAL_REGISTRY.snapshot_ops().items()
    if name.startswith("scn."))


def ensure_registered() -> None:
    """Re-register the ``scn.*`` operations if a reset dropped them.

    Test harnesses snapshot and restore the process-global registry
    around each test; a restore taken before this module was first
    imported silently unregisters the scenario ops.  Re-registering the
    identical functions is idempotent, so every scenario entry point
    calls this defensively.
    """
    for op in _SCENARIO_OPS:
        GLOBAL_REGISTRY.register(op.name, op.kind, op.fn)
