"""Seeded differential fuzzing of the scenario pack.

``generate_case(seed)`` deterministically derives a workload — random
itineraries over the semantic scenarios of :mod:`repro.scenarios`,
random resource placements, and a random failure/outage schedule —
and ``check_case`` runs it on all three execution backends, comparing
them against each other *and* against an independent model oracle.
A failing seed reproduces from the one-line string
``fuzz:v1:seed=<N>`` (``python -m repro fuzz --repro ...``).
"""

from repro.fuzz.generator import (
    GENERATOR_VERSION,
    AgentPlan,
    FuzzCase,
    canonical_json,
    case_digest,
    case_from_repro,
    generate_case,
    parse_repro,
    repro_string,
    validate_case,
)
from repro.fuzz.model import ModelError, predict
from repro.fuzz.runner import (
    BACKENDS,
    build_case_world,
    check_case,
    run_case_on,
    run_seed,
    run_seed_range,
)

__all__ = [
    "AgentPlan",
    "BACKENDS",
    "FuzzCase",
    "GENERATOR_VERSION",
    "ModelError",
    "build_case_world",
    "canonical_json",
    "case_digest",
    "case_from_repro",
    "check_case",
    "generate_case",
    "parse_repro",
    "predict",
    "repro_string",
    "run_case_on",
    "run_seed",
    "run_seed_range",
    "validate_case",
]
