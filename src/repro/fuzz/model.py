"""The model oracle: what a fuzz case *must* produce, computed flat.

A pure-Python re-execution of each agent's plan with the semantic
compensation rules applied symbolically — no kernel, no transactions,
no backends.  It is deliberately independent of the execution machinery
(it shares only the plan format and the account-naming conventions), so
a bug in a compensating operation, in the rollback driver's
recoverability adjustment, or in the exactly-once protocol shows up as
a model mismatch on *every* backend even when the three backends agree
with each other.

Placement is the one thing the model does not predict: under the
fault-tolerant protocol a crashed node's steps divert to alternates, so
*which* node's bank carries an effect depends on the failure schedule.
The model therefore predicts placement-free aggregates — per-agent
customer spend and the cross-node totals of the shared accounts — plus
the exact outcome payload (the WRO result dict) and the rollback count,
all of which are placement-invariant.
"""

from __future__ import annotations

from typing import Any

from repro.fuzz.generator import AgentPlan, FuzzCase, _target_position
from repro.scenarios.agent import CUSTOMER_SEED, SHARED_ACCOUNTS


class ModelError(Exception):
    """The plan breaks the scenario contract (model cannot execute it)."""


def predict_agent(plan: AgentPlan) -> dict[str, Any]:
    """Symbolic execution of one agent's plan.

    Returns ``{"result", "rollbacks", "delta"}`` where ``delta`` maps
    ``"customer"`` and each shared account to the agent's net
    contribution (minor units).
    """
    steps = plan.steps
    wro: dict[str, Any] = {"undone": [], "vouchers": [], "voided": [],
                           "promises": [], "notices": [],
                           "fees_lost": 0, "penalties_lost": 0}
    delta = {"customer": 0}
    delta.update({account: 0 for account in SHARED_ACCOUNTS})
    rollbacks = 0
    pos = 0
    fuel = 10_000  # defensive: a contract breach must not spin forever
    while pos < len(steps):
        fuel -= 1
        if fuel <= 0:
            raise ModelError(f"{plan.agent_id}: plan does not converge")
        spec = steps[pos]
        if spec.op == "rollback":
            if (pos - 1) not in wro["undone"]:
                rollbacks += 1
                t = _target_position(spec.target)
                effective = t
                for u in range(pos - 1, t, -1):
                    if steps[u].op == "ship":
                        # The driver ratchets to the savepoint above
                        # the newest unrecoverable step on the path.
                        effective = u
                        break
                for k in range(pos - 1, effective, -1):
                    _compensate(plan.agent_id, steps[k], k, wro, delta)
                pos = effective + 1
                continue
        else:
            _forward(spec, pos, wro, delta)
        pos += 1
    result = {
        "pos": len(steps),
        "undone": list(wro["undone"]),
        "vouchers": list(wro["vouchers"]),
        "voided": list(wro["voided"]),
        "promises": list(wro["promises"]),
        "notices": list(wro["notices"]),
        "fees_lost": wro["fees_lost"],
        "penalties_lost": wro["penalties_lost"],
    }
    return {"result": result, "rollbacks": rollbacks, "delta": delta}


def _forward(spec, pos: int, wro: dict[str, Any],
             delta: dict[str, int]) -> None:
    if spec.op in ("purchase", "voucher", "book", "ship"):
        delta["customer"] -= spec.amount
        delta["merchant"] += spec.amount
        if spec.op == "voucher":
            wro["vouchers"].append(f"{pos}:{spec.tag}")
    elif spec.op == "reserve":
        delta["customer"] -= spec.amount
        delta["escrow-pool"] += spec.amount
    elif spec.op == "promise":
        wro["promises"].append(f"{pos}:{spec.tag}")
    else:
        raise ModelError(f"unknown forward op {spec.op!r}")


def _compensate(agent_id: str, spec, pos: int, wro: dict[str, Any],
                delta: dict[str, int]) -> None:
    # Operation entries pop newest-first, so within a step the
    # mark_undone ACE (logged last) runs before the op-specific entry.
    if spec.op == "purchase":
        wro["undone"].append(pos)
        delta["merchant"] -= spec.amount
        delta["customer"] += spec.amount
    elif spec.op == "voucher":
        wro["undone"].append(pos)
        delta["merchant"] -= spec.amount
        delta["customer"] += spec.amount
        wro["voided"].append(pos)
    elif spec.op == "book":
        wro["undone"].append(pos)
        wro["fees_lost"] += spec.fee
        delta["merchant"] -= spec.amount
        delta["customer"] += spec.amount - spec.fee
        delta["fees"] += spec.fee
    elif spec.op == "reserve":
        wro["undone"].append(pos)
        wro["penalties_lost"] += spec.penalty
        delta["escrow-pool"] -= spec.amount
        delta["customer"] += spec.amount - spec.penalty
        delta["penalties"] += spec.penalty
    elif spec.op == "promise":
        wro["undone"].append(pos)
        wro["notices"].append(f"cancelled:{pos}:{spec.tag}")
    else:
        raise ModelError(
            f"{agent_id}[{pos}]: {spec.op!r} inside a rollback window")


def predict(case: FuzzCase) -> dict[str, Any]:
    """The full expected outcome surface of a case.

    ``agents`` maps agent id to the per-agent prediction (including the
    expected cross-node customer-account total); ``totals`` maps each
    shared account to its expected cross-node balance sum.
    """
    agents = {}
    totals = {account: 0 for account in SHARED_ACCOUNTS}
    for plan in case.agents:
        prediction = predict_agent(plan)
        prediction["customer_total"] = (case.n_nodes * CUSTOMER_SEED
                                        + prediction["delta"]["customer"])
        agents[plan.agent_id] = prediction
        for account in SHARED_ACCOUNTS:
            totals[account] += prediction["delta"][account]
    return {"agents": agents, "totals": totals}
