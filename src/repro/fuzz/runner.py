"""Run fuzz cases on all three backends and cross-check the results.

Two independent nets catch a divergence:

* the **differential** net — outcomes must be identical across the
  unsharded :class:`World`, the in-process :class:`ShardedWorld` and
  the multiprocess :class:`ProcShardedWorld`; per-node balance maps,
  counters, epochs and event totals must be bit-identical between the
  two sharded backends; the replicated ledger must agree;
* the **model** net — every backend must match the placement-free
  prediction of :mod:`repro.fuzz.model`: agent outcome payloads,
  rollback counts, per-agent customer spend and shared-account totals.

The second net is what makes the fuzzer more than a consistency check:
a semantic-compensation bug that manifests identically on all three
backends (the realistic kind — the same registered operation runs
everywhere) slips through the first net and is caught by the second.

``check_case`` returns a list of human-readable failure strings
(empty = clean); ``run_seed_range`` drives it over ``range(a, b)`` and
collects one-line repro strings for the failing seeds.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.fuzz.generator import (
    FuzzCase,
    generate_case,
    repro_string,
    validate_case,
)
from repro.fuzz.model import predict
from repro.scenarios.agent import (
    CUSTOMER_SEED,
    SHARED_ACCOUNTS,
    ScenarioAgent,
)

#: Execution backends a case is cross-checked on, cheapest first.
BACKENDS = ("world", "sharded", "proc")


def build_case_world(case: FuzzCase, backend: str):
    """A world for ``case`` on ``backend``, banked and FT-wired."""
    from repro import (
        Bank,
        FTParams,
        ProcShardedWorld,
        ShardedWorld,
        World,
    )
    from repro.resources.bank import OverdraftPolicy

    kwargs = {"ft_params": FTParams(takeover_timeout=0.05)}
    if backend == "world":
        world = World(seed=case.seed, **kwargs)
    elif backend == "sharded":
        world = ShardedWorld(n_shards=case.n_shards, seed=case.seed,
                             **kwargs)
    elif backend == "proc":
        world = ProcShardedWorld(n_shards=case.n_shards, seed=case.seed,
                                 **kwargs)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    nodes = case.nodes()
    for name in nodes:
        node = world.add_node(name)
        bank = Bank("bank")
        for account in SHARED_ACCOUNTS:
            bank.seed_account(account, 0,
                              overdraft=OverdraftPolicy.ALLOWED)
        for plan in case.agents:
            bank.seed_account(f"cust-{plan.agent_id}", CUSTOMER_SEED,
                              overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    for i, name in enumerate(nodes):
        alts = (nodes[(i + 1) % len(nodes)], nodes[(i + 2) % len(nodes)])
        if backend == "world":
            world.ft.set_alternates(name, *alts)
        else:
            world.set_alternates(name, *alts)
    return world


def _shard_nodes(case: FuzzCase, shard: int) -> list[str]:
    """Nodes round-robin placement assigns to ``shard``."""
    return [name for i, name in enumerate(case.nodes())
            if i % case.n_shards == shard]


def run_case_on(case: FuzzCase, backend: str) -> dict[str, Any]:
    """One backend run; returns the comparable outcome surface."""
    from repro.agent.packages import Protocol, RollbackMode
    from repro.sim.failures import CrashPlan

    world = build_case_world(case, backend)
    try:
        if case.crashes:
            world.apply_crash_plans(
                [CrashPlan(crash["node"], crash["at"], crash["down"])
                 for crash in case.crashes])
        if case.outage is not None:
            if backend == "world":
                # Same semantics minus the (outcome-invisible) kernel
                # freeze: every node of the shard crashes and recovers.
                world.apply_crash_plans(
                    [CrashPlan(name, case.outage["at"],
                               case.outage["restart_at"]
                               - case.outage["at"])
                     for name in _shard_nodes(case, case.outage["shard"])])
            else:
                world.kill_shard(case.outage["shard"],
                                 at=case.outage["at"],
                                 restart_at=case.outage["restart_at"])
        for plan in case.agents:
            agent = ScenarioAgent(plan.agent_id, plan.steps)
            world.launch(agent, at=plan.steps[0].node, method="step",
                         mode=RollbackMode(case.mode),
                         protocol=Protocol.FAULT_TOLERANT)
        world.run(until=case.horizon)
        balances = {}
        for name in case.nodes():
            bank = world.resource_state(name, "bank")
            balances[name] = {account: bank.peek(account)["balance"]
                              for account in sorted(bank.keys())}
        result = {
            "outcomes": world.outcomes(),
            "balances": balances,
            "ledger_agrees": (world.ledger_quorum_agrees()
                              if backend != "world" else True),
        }
        if backend != "world":
            result["counters"] = world.counters()
            result["epochs"] = world.epochs_run
            result["events"] = world.events_processed()
        return result
    finally:
        if hasattr(world, "close"):
            world.close()


def _account_total(record: dict[str, Any], account: str) -> int:
    return sum(per_node.get(account, 0)
               for per_node in record["balances"].values())


def _check_model(backend: str, record: dict[str, Any],
                 expected: dict[str, Any], case: FuzzCase) -> list[str]:
    failures = []
    outcomes = record["outcomes"]
    for agent_id, prediction in expected["agents"].items():
        outcome = outcomes.get(agent_id)
        if outcome is None:
            failures.append(f"{backend}: agent {agent_id} has no outcome")
            continue
        if outcome["status"] != "finished":
            failures.append(
                f"{backend}: {agent_id} ended {outcome['status']!r} "
                f"({outcome.get('failure')})")
            continue
        if outcome["result"] != prediction["result"]:
            failures.append(
                f"{backend}: {agent_id} result {outcome['result']!r} != "
                f"model {prediction['result']!r}")
        if outcome["rollbacks_completed"] != prediction["rollbacks"]:
            failures.append(
                f"{backend}: {agent_id} completed "
                f"{outcome['rollbacks_completed']} rollbacks, model says "
                f"{prediction['rollbacks']}")
        actual_customer = _account_total(record, f"cust-{agent_id}")
        if actual_customer != prediction["customer_total"]:
            failures.append(
                f"{backend}: {agent_id} customer total {actual_customer} "
                f"!= model {prediction['customer_total']}")
    for account, total in expected["totals"].items():
        actual = _account_total(record, account)
        if actual != total:
            failures.append(
                f"{backend}: {account} total {actual} != model {total}")
    return failures


def _check_differential(records: dict[str, dict[str, Any]]) -> list[str]:
    failures = []
    backends = list(records)
    reference = backends[0]
    for backend in backends[1:]:
        if records[backend]["outcomes"] != records[reference]["outcomes"]:
            failures.append(
                f"outcomes diverge: {backend} != {reference}")
        for account in records[reference]["balances"][
                next(iter(records[reference]["balances"]))]:
            lhs = _account_total(records[reference], account)
            rhs = _account_total(records[backend], account)
            if lhs != rhs:
                failures.append(
                    f"{account} totals diverge: {reference}={lhs} "
                    f"{backend}={rhs}")
    for backend in backends:
        if not records[backend]["ledger_agrees"]:
            failures.append(f"{backend}: ledger quorum disagrees")
    if "sharded" in records and "proc" in records:
        sharded, proc = records["sharded"], records["proc"]
        if sharded["balances"] != proc["balances"]:
            failures.append("per-node balances diverge: sharded != proc")
        for key in ("counters", "epochs", "events"):
            if sharded[key] != proc[key]:
                failures.append(f"{key} diverge: sharded != proc")
    return failures


def check_case(case: FuzzCase,
               backends: Sequence[str] = BACKENDS) -> list[str]:
    """All nets over one case; returns failure strings (empty = clean)."""
    validate_case(case)
    expected = predict(case)
    failures: list[str] = []
    records: dict[str, dict[str, Any]] = {}
    for backend in backends:
        try:
            records[backend] = run_case_on(case, backend)
        except Exception as exc:  # noqa: BLE001 - a crash IS the finding
            failures.append(f"{backend}: crashed: {exc!r}")
    for backend, record in records.items():
        failures.extend(_check_model(backend, record, expected, case))
    if len(records) > 1:
        failures.extend(_check_differential(records))
    return failures


def run_seed(seed: int,
             backends: Sequence[str] = BACKENDS) -> list[str]:
    """Generate and check one seed; returns failure strings."""
    return check_case(generate_case(seed), backends)


def run_seed_range(start: int, stop: int,
                   backends: Sequence[str] = BACKENDS,
                   on_progress: Optional[Callable[[int, list], None]] = None
                   ) -> dict[str, Any]:
    """Sweep ``range(start, stop)``; collect failures + repro strings."""
    failures: dict[int, list[str]] = {}
    for seed in range(start, stop):
        messages = run_seed(seed, backends)
        if messages:
            failures[seed] = messages
        if on_progress is not None:
            on_progress(seed, messages)
    return {
        "seeds": stop - start,
        "failing_seeds": sorted(failures),
        "failures": failures,
        "repros": [repro_string(seed) for seed in sorted(failures)],
    }
