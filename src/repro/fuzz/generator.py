"""Seeded scenario generator: random itineraries, placements, failures.

Every draw comes from one ``random.Random(seed)`` stream, floats are
rounded to three decimals, and the JSON form is canonical (sorted keys,
compact separators) — so a :class:`FuzzCase` is **byte-identical for
the same seed on every supported Python version** (the Mersenne
generator and shortest-float repr are version-stable; nothing here
touches hash randomization or dict-order-dependent iteration).  The
seed-stability test pins golden digests to enforce this.

Generated plans respect the structural contract of
:class:`repro.scenarios.agent.ScenarioAgent` (checked by
:func:`validate_case`):

* a ``rollback`` position ``s`` sits at ``s >= 2``, and ``plan[s-1]``
  is a compensatable op step (not ``ship``, not another rollback) — so
  the rollback guard always trips after the rollback ran;
* its requested target position ``t`` carries a savepoint
  (``savepoint`` flag, or a ``ship`` ratchet) with
  ``prev_site < t <= s - 2`` — windows of successive rollback sites
  are disjoint and non-empty, so re-execution converges.

The one-line repro string for a failing seed is
``fuzz:v<version>:seed=<N>`` (see :func:`repro_string` /
:func:`case_from_repro`); committed corpus entries store the whole
case JSON instead, so they stay valid when the generator evolves.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.scenarios.agent import StepSpec

#: Bump when a generator change may alter the case a seed produces.
GENERATOR_VERSION = 1

#: Weighted bag the forward op of each plan position is drawn from.
_OPS_BAG = ("purchase", "purchase", "book", "book", "reserve", "reserve",
            "voucher", "promise", "ship")


@dataclass
class AgentPlan:
    """One agent's generated itinerary."""

    agent_id: str
    steps: list[StepSpec] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {"agent_id": self.agent_id,
                "steps": [step.to_json() for step in self.steps]}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "AgentPlan":
        return cls(agent_id=data["agent_id"],
                   steps=[StepSpec.from_json(s) for s in data["steps"]])


@dataclass
class FuzzCase:
    """One generated workload: itineraries x placement x failures."""

    version: int
    seed: int
    n_nodes: int
    n_shards: int
    mode: str          # RollbackMode value: "basic" | "optimized"
    horizon: float
    agents: list[AgentPlan] = field(default_factory=list)
    crashes: list[dict[str, Any]] = field(default_factory=list)
    outage: Optional[dict[str, Any]] = None

    def nodes(self) -> list[str]:
        return [f"n{i}" for i in range(self.n_nodes)]

    def to_json(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "n_shards": self.n_shards,
            "mode": self.mode,
            "horizon": self.horizon,
            "agents": [plan.to_json() for plan in self.agents],
            "crashes": self.crashes,
            "outage": self.outage,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FuzzCase":
        return cls(
            version=data["version"], seed=data["seed"],
            n_nodes=data["n_nodes"], n_shards=data["n_shards"],
            mode=data["mode"], horizon=data["horizon"],
            agents=[AgentPlan.from_json(p) for p in data["agents"]],
            crashes=list(data.get("crashes", [])),
            outage=data.get("outage"))


def canonical_json(case: FuzzCase) -> str:
    """The byte-stable serialised form (sorted keys, no whitespace)."""
    return json.dumps(case.to_json(), sort_keys=True,
                      separators=(",", ":"))


def case_digest(case: FuzzCase) -> str:
    """SHA-256 of the canonical JSON — the cross-version identity."""
    return hashlib.sha256(canonical_json(case).encode("utf-8")).hexdigest()


def repro_string(seed: int) -> str:
    """The one-line reproducer printed for a failing seed."""
    return f"fuzz:v{GENERATOR_VERSION}:seed={seed}"


def parse_repro(repro: str) -> int:
    """Seed of a ``fuzz:v<V>:seed=<N>`` repro string (version-checked)."""
    parts = repro.strip().split(":")
    if (len(parts) != 3 or parts[0] != "fuzz"
            or not parts[1].startswith("v")
            or not parts[2].startswith("seed=")):
        raise ValueError(f"malformed repro string {repro!r}")
    version = int(parts[1][1:])
    if version != GENERATOR_VERSION:
        raise ValueError(
            f"repro string {repro!r} is for generator v{version}; this "
            f"build generates v{GENERATOR_VERSION} (replay the committed "
            f"corpus JSON instead)")
    return int(parts[2][len("seed="):])


def case_from_repro(repro: str) -> FuzzCase:
    """Regenerate the failing case named by a repro string."""
    return generate_case(parse_repro(repro))


def _generate_plan(rng: random.Random, agent_id: str,
                   nodes: list[str]) -> AgentPlan:
    steps: list[StepSpec] = []
    length = rng.randint(5, 9)
    sites = 0
    last_site = -1
    while len(steps) < length:
        pos = len(steps)
        candidates = [t for t in range(last_site + 1, pos - 1)
                      if steps[t].savepoint or steps[t].op == "ship"]
        can_roll = (sites < 2 and pos >= 2 and candidates
                    and steps[pos - 1].op not in ("ship", "rollback"))
        if can_roll and rng.random() < 0.4:
            t = rng.choice(candidates)
            target = f"sp{t}" if steps[t].savepoint else f"rt{t}"
            steps.append(StepSpec(op="rollback", node=rng.choice(nodes),
                                  target=target))
            sites += 1
            last_site = pos
            continue
        op = rng.choice(_OPS_BAG)
        spec = StepSpec(op=op, node=rng.choice(nodes))
        if op in ("purchase", "voucher", "book", "reserve", "ship"):
            spec.amount = rng.randint(50, 400)
        if op == "book":
            spec.fee = rng.randint(1, 30)
        if op == "reserve":
            spec.penalty = rng.randint(1, 30)
        if op in ("voucher", "promise"):
            spec.tag = f"t{rng.randint(0, 99)}"
        if op != "ship":
            spec.savepoint = rng.random() < 0.5
        steps.append(spec)
    return AgentPlan(agent_id=agent_id, steps=steps)


def generate_case(seed: int) -> FuzzCase:
    """The deterministic workload for ``seed`` (same seed, same bytes)."""
    rng = random.Random(seed)
    n_nodes = rng.randint(6, 10)
    n_shards = 3
    nodes = [f"n{i}" for i in range(n_nodes)]
    mode = rng.choice(["basic", "optimized"])
    agents = [_generate_plan(rng, f"ag{a}", nodes)
              for a in range(rng.randint(1, 3))]
    crashes = []
    for _ in range(rng.randint(0, 2)):
        crashes.append({"node": rng.choice(nodes),
                        "at": round(rng.uniform(0.5, 8.0), 3),
                        "down": round(rng.uniform(0.2, 1.5), 3)})
    outage = None
    if rng.random() < 0.4:
        at = round(rng.uniform(1.0, 6.0), 3)
        outage = {"shard": rng.randrange(n_shards), "at": at,
                  "restart_at": round(at + rng.uniform(1.0, 3.0), 3)}
    case = FuzzCase(version=GENERATOR_VERSION, seed=seed, n_nodes=n_nodes,
                    n_shards=n_shards, mode=mode, horizon=240.0,
                    agents=agents, crashes=crashes, outage=outage)
    validate_case(case)
    return case


def _target_position(target: str) -> int:
    if not (target.startswith("sp") or target.startswith("rt")):
        raise ValueError(f"unparseable savepoint id {target!r}")
    return int(target[2:])


def validate_case(case: FuzzCase) -> None:
    """Check the structural contract; raise ``ValueError`` on breach.

    The generator upholds these by construction; corpus entries and
    hand-written cases go through the same gate before a run, so a
    malformed case fails loudly instead of livelocking an agent.
    """
    nodes = set(case.nodes())
    if case.outage is not None:
        if not 0 <= case.outage["shard"] < case.n_shards:
            raise ValueError("outage names a shard that does not exist")
        if case.outage["restart_at"] <= case.outage["at"]:
            raise ValueError("outage restart_at must be after at")
    for crash in case.crashes:
        if crash["node"] not in nodes:
            raise ValueError(f"crash names unknown node {crash['node']!r}")
    for plan in case.agents:
        last_site = -1
        for pos, spec in enumerate(plan.steps):
            if spec.node not in nodes:
                raise ValueError(
                    f"{plan.agent_id}[{pos}] on unknown node {spec.node!r}")
            if spec.op != "rollback":
                if spec.op == "book" and spec.fee >= spec.amount:
                    raise ValueError(
                        f"{plan.agent_id}[{pos}]: fee >= amount")
                if spec.op == "reserve" and spec.penalty >= spec.amount:
                    raise ValueError(
                        f"{plan.agent_id}[{pos}]: penalty >= amount")
                continue
            if pos < 2:
                raise ValueError(
                    f"{plan.agent_id}[{pos}]: rollback site before step 2")
            prev = plan.steps[pos - 1]
            if prev.op in ("ship", "rollback"):
                raise ValueError(
                    f"{plan.agent_id}[{pos}]: rollback guard step is "
                    f"{prev.op!r} (would never trip)")
            t = _target_position(spec.target)
            if not (last_site < t <= pos - 2):
                raise ValueError(
                    f"{plan.agent_id}[{pos}]: target {spec.target!r} "
                    f"outside ({last_site}, {pos - 2}]")
            anchor = plan.steps[t]
            if spec.target.startswith("sp") and not anchor.savepoint:
                raise ValueError(
                    f"{plan.agent_id}[{pos}]: target {spec.target!r} "
                    f"was never constituted")
            if spec.target.startswith("rt") and anchor.op != "ship":
                raise ValueError(
                    f"{plan.agent_id}[{pos}]: ratchet {spec.target!r} "
                    f"has no ship step")
            last_site = pos
