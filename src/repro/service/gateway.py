"""World-as-a-service: the asyncio HTTP gateway.

A deliberately dependency-free HTTP/1.1 server (stdlib ``asyncio``
only — the toolchain bakes in no web framework) exposing live worlds:

====== =============================== =====================================
Method Path                            Meaning
====== =============================== =====================================
GET    ``/healthz``                    liveness + hosted-world count
POST   ``/worlds``                     create a world from a ``WorldSpec``
GET    ``/worlds``                     list hosted worlds
GET    ``/worlds/{id}``                barrier-consistent world snapshot
DELETE ``/worlds/{id}``                graceful drain + close
POST   ``/worlds/{id}/launch``         admit one ``LaunchSpec`` (429 on
                                       admission overflow, with
                                       ``Retry-After``)
GET    ``/worlds/{id}/agents/{agent}`` one agent's record snapshot
GET    ``/worlds/{id}/events``         Server-Sent Events telemetry stream
====== =============================== =====================================

The SSE stream carries the host's event feed (``world``, ``launch``,
``epoch`` — one per journal group commit, in commit order — ``agent``,
``timeline``, ``metrics``, ``drain``) as ``event:``/``id:``/``data:``
frames.  A client disconnect cancels only that subscription; the world
and every other subscriber keep running.

Shutdown (SIGTERM/SIGINT under ``python -m repro serve``, or
:meth:`Gateway.shutdown`) drains every host — finish the epoch, final
journal group commit, close shm rings — before the sockets close.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Optional

from repro.errors import UsageError
from repro.service.host import AdmissionFull, HostClosed, WorldHost
from repro.service.worlds import LaunchSpec, WorldSpec

_MAX_BODY = 1 << 20
_MAX_HEADER = 64 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: Optional[dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


_REASONS = {
    200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _response(status: int, body: bytes, content_type: str,
              extra: Optional[dict[str, str]] = None) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    headers = [f"HTTP/1.1 {status} {reason}",
               f"Content-Type: {content_type}",
               f"Content-Length: {len(body)}",
               "Connection: close"]
    for key, value in (extra or {}).items():
        headers.append(f"{key}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, payload: Any,
                   extra: Optional[dict[str, str]] = None) -> bytes:
    body = (json.dumps(payload, default=repr) + "\n").encode("utf-8")
    return _response(status, body, "application/json", extra)


class Gateway:
    """The service: hosted worlds + the HTTP server around them."""

    def __init__(self, *, max_inflight: int = 8, max_pending: int = 64,
                 retry_after: float = 1.0, metrics_every: int = 16,
                 drain_timeout: float = 30.0):
        self.max_inflight = max_inflight
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.metrics_every = metrics_every
        self.drain_timeout = drain_timeout
        self.hosts: dict[str, WorldHost] = {}
        self._world_seq = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutting_down = False

    # -- world management ---------------------------------------------------------

    def create_world(self, spec: WorldSpec) -> WorldHost:
        if self._shutting_down:
            raise _HttpError(503, "gateway is shutting down")
        self._world_seq += 1
        world_id = f"w{self._world_seq}"
        host = WorldHost(world_id, spec,
                         max_inflight=self.max_inflight,
                         max_pending=self.max_pending,
                         retry_after=self.retry_after,
                         metrics_every=self.metrics_every)
        self.hosts[world_id] = host
        host.start()
        return host

    def host_of(self, world_id: str) -> WorldHost:
        host = self.hosts.get(world_id)
        if host is None:
            raise _HttpError(404, f"no world {world_id!r}")
        return host

    async def shutdown(self) -> None:
        """Drain every host, then stop accepting connections."""
        if self._shutting_down:
            return
        self._shutting_down = True
        loop = asyncio.get_running_loop()
        for host in list(self.hosts.values()):
            await loop.run_in_executor(None, host.drain,
                                       self.drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- server -------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(
                    reader)
            except _HttpError as exc:
                writer.write(_json_response(
                    exc.status, {"error": str(exc)}, exc.headers))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.TimeoutError):
                return
            await self._dispatch(method, path, headers, body, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, dict[str, str], bytes]:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=30)
        if len(head) > _MAX_HEADER:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line "
                                  f"{lines[0]!r}") from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, f"body of {length} bytes exceeds "
                                  f"{_MAX_BODY}")
        body = await asyncio.wait_for(reader.readexactly(length),
                                      timeout=30) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    @staticmethod
    def _json_body(body: bytes) -> dict[str, Any]:
        if not body:
            return {}
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") \
                from None
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return data

    async def _dispatch(self, method: str, path: str,
                        headers: dict[str, str], body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        try:
            parts = [p for p in path.split("/") if p]
            if path == "/healthz" and method == "GET":
                payload: Any = {"ok": True, "worlds": len(self.hosts),
                                "shutting_down": self._shutting_down}
                writer.write(_json_response(200, payload))
            elif path == "/worlds" and method == "POST":
                spec = WorldSpec.from_json(self._json_body(body))
                host = await self._offload(self.create_world, spec)
                writer.write(_json_response(
                    201, {"world": host.world_id,
                          "spec": spec.to_json()}))
            elif path == "/worlds" and method == "GET":
                writer.write(_json_response(200, {
                    "worlds": [{"world": wid,
                                "spec": h.spec.to_json(),
                                "draining": h.draining}
                               for wid, h in self.hosts.items()]}))
            elif len(parts) == 2 and parts[0] == "worlds":
                await self._dispatch_world(method, parts[1], writer)
            elif len(parts) == 3 and parts[0] == "worlds" \
                    and parts[2] == "launch" and method == "POST":
                await self._handle_launch(parts[1], headers, body, writer)
            elif len(parts) == 3 and parts[0] == "worlds" \
                    and parts[2] == "events" and method == "GET":
                await self._handle_events(parts[1], writer)
            elif len(parts) == 4 and parts[0] == "worlds" \
                    and parts[2] == "agents" and method == "GET":
                host = self.host_of(parts[1])
                snap = await self._offload(host.agent_snapshot, parts[3])
                writer.write(_json_response(200, snap))
            else:
                raise _HttpError(404, f"no route {method} {path}")
        except _HttpError as exc:
            writer.write(_json_response(exc.status, {"error": str(exc)},
                                        exc.headers))
        except UsageError as exc:
            writer.write(_json_response(400, {"error": str(exc)}))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            writer.write(_json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}))
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _dispatch_world(self, method: str, world_id: str,
                              writer: asyncio.StreamWriter) -> None:
        host = self.host_of(world_id)
        if method == "GET":
            writer.write(_json_response(
                200, await self._offload(host.snapshot)))
        elif method == "DELETE":
            snap = await self._offload(host.drain, self.drain_timeout)
            self.hosts.pop(world_id, None)
            writer.write(_json_response(200, snap))
        else:
            raise _HttpError(405, f"{method} not allowed on a world")

    async def _handle_launch(self, world_id: str,
                             headers: dict[str, str], body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        host = self.host_of(world_id)
        data = self._json_body(body)
        if "tenant" not in data and "x-tenant" in headers:
            data["tenant"] = headers["x-tenant"]
        spec = LaunchSpec.from_json(data)
        try:
            result = await self._offload(host.launch, spec)
        except AdmissionFull as exc:
            raise _HttpError(
                429, str(exc),
                {"Retry-After": f"{exc.retry_after:g}"}) from None
        except HostClosed as exc:
            raise _HttpError(503, str(exc)) from None
        writer.write(_json_response(202, result))

    async def _handle_events(self, world_id: str,
                             writer: asyncio.StreamWriter) -> None:
        host = self.host_of(world_id)
        loop = asyncio.get_running_loop()
        sub = host.subscribe(loop=loop, replay=True)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        try:
            await writer.drain()
            while True:
                item = await sub.aget()
                if item is None:
                    writer.write(b"event: end\r\ndata: {}\r\n\r\n")
                    await writer.drain()
                    return
                frame = (f"event: {item['event']}\r\n"
                         f"id: {item['seq']}\r\n"
                         f"data: {json.dumps(item['data'], default=repr)}"
                         f"\r\n\r\n")
                writer.write(frame.encode("utf-8"))
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # This subscriber went away; the world keeps running and
            # every other stream is untouched.
            pass
        finally:
            host.unsubscribe(sub)

    @staticmethod
    async def _offload(fn, *args):
        """Run a blocking host call off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, lambda: fn(*args))


async def serve(host: str = "127.0.0.1", port: int = 8472, *,
                max_inflight: int = 8, max_pending: int = 64,
                retry_after: float = 1.0, metrics_every: int = 16,
                drain_timeout: float = 30.0,
                ready: Optional[Any] = None) -> None:
    """Run the gateway until SIGTERM/SIGINT, then drain gracefully.

    ``ready`` (optional) is called with the bound ``(host, port)`` once
    the socket is listening — the smoke tests use it instead of
    polling.
    """
    gateway = Gateway(max_inflight=max_inflight, max_pending=max_pending,
                      retry_after=retry_after, metrics_every=metrics_every,
                      drain_timeout=drain_timeout)
    bound_host, bound_port = await gateway.start(host, port)
    print(f"repro service listening on http://{bound_host}:{bound_port}",
          flush=True)
    if ready is not None:
        ready((bound_host, bound_port))
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread / platform without signal support
    server_task = asyncio.ensure_future(gateway.serve_forever())
    await stop.wait()
    print("repro service draining...", flush=True)
    await gateway.shutdown()
    server_task.cancel()
    try:
        await server_task
    except asyncio.CancelledError:  # pragma: no cover - py<3.13 quirk
        pass
    print("repro service drained", flush=True)
