"""World and launch specifications for the service gateway.

The gateway's whole determinism story rests on one property: a world
built from a :class:`WorldSpec` over HTTP is *the same world* a script
would build from the same spec — same topology, same seeds, same
resources — and a :class:`LaunchSpec` resolves to the same agent and
plan either way.  :func:`build_world` and :func:`resolve_launch` are
therefore the single construction path for both sides; the parity
tests and the service bench run one launch through the gateway and the
same spec pair scripted, and assert identical per-agent outcomes and
trace digests.

Topology is the benchmark tour ring (one :class:`~repro.resources.bank.
Bank` with ``merchant``/``escrow`` accounts plus one
:class:`~repro.resources.directory.InfoDirectory` per node — see
:func:`repro.bench.harness.build_tour_world`), across all three
execution backends (``world``, ``sharded``, ``proc``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.agent.packages import Protocol, RollbackMode
from repro.bench.workloads import BANK, DIRECTORY, TourAgent, make_tour_plan
from repro.errors import UsageError
from repro.resources.bank import Bank, OverdraftPolicy
from repro.resources.directory import InfoDirectory

BACKENDS = ("world", "sharded", "proc")


@dataclass
class WorldSpec:
    """Everything needed to (re)build one hosted world.

    The JSON body of ``POST /worlds`` deserializes into this (unknown
    keys are rejected); equal specs build bit-identical worlds.
    """

    backend: str = "world"
    nodes: int = 4
    n_shards: int = 2
    seed: int = 0
    lockstep: str = "auto"
    epoch: Optional[float] = None
    journal: str = "memory"  # "memory" | "none"

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "WorldSpec":
        if not isinstance(data, dict):
            raise UsageError(f"world spec must be an object, got "
                             f"{type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise UsageError(f"unknown world-spec key(s) {unknown}; "
                             f"known: {sorted(known)}")
        spec = cls(**data)
        spec.validate()
        return spec

    def validate(self) -> None:
        if self.backend not in BACKENDS:
            raise UsageError(f"unknown backend {self.backend!r}; "
                             f"choose from {BACKENDS}")
        if not isinstance(self.nodes, int) or self.nodes < 2:
            raise UsageError(f"nodes must be an int >= 2, got "
                             f"{self.nodes!r}")
        if not isinstance(self.n_shards, int) or self.n_shards < 1:
            raise UsageError(f"n_shards must be an int >= 1, got "
                             f"{self.n_shards!r}")
        if self.journal not in ("memory", "none"):
            raise UsageError(f"journal must be 'memory' or 'none', got "
                             f"{self.journal!r}")

    def to_json(self) -> dict[str, Any]:
        return {
            "backend": self.backend, "nodes": self.nodes,
            "n_shards": self.n_shards, "seed": self.seed,
            "lockstep": self.lockstep, "epoch": self.epoch,
            "journal": self.journal,
        }

    def node_names(self) -> list[str]:
        return [f"n{i}" for i in range(self.nodes)]


@dataclass
class LaunchSpec:
    """One agent launch (the JSON body of ``POST /worlds/{id}/launch``).

    Resolves deterministically to a benchmark tour plan
    (:func:`repro.bench.workloads.make_tour_plan`) over the world's
    node ring plus a :class:`~repro.bench.workloads.TourAgent`, so the
    same spec produces the same agent whether it arrives over HTTP or
    from a script.
    """

    agent_id: Optional[str] = None  # host assigns "ag-N" when omitted
    steps: int = 8
    mode: str = "basic"
    protocol: str = "basic"
    mixed_fraction: float = 0.0
    ace_fraction: float = 0.0
    rollback_times: int = 1
    rollback_depth: Optional[int] = None
    tenant: str = "default"

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "LaunchSpec":
        if not isinstance(data, dict):
            raise UsageError(f"launch spec must be an object, got "
                             f"{type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise UsageError(f"unknown launch-spec key(s) {unknown}; "
                             f"known: {sorted(known)}")
        spec = cls(**data)
        spec.validate()
        return spec

    def validate(self) -> None:
        if not isinstance(self.steps, int) or self.steps < 2:
            raise UsageError(f"steps must be an int >= 2, got "
                             f"{self.steps!r}")
        try:
            RollbackMode(self.mode)
        except ValueError:
            raise UsageError(
                f"unknown mode {self.mode!r}; choose from "
                f"{[m.value for m in RollbackMode]}") from None
        try:
            Protocol(self.protocol)
        except ValueError:
            raise UsageError(
                f"unknown protocol {self.protocol!r}; choose from "
                f"{[p.value for p in Protocol]}") from None

    def to_json(self) -> dict[str, Any]:
        return {
            "agent_id": self.agent_id, "steps": self.steps,
            "mode": self.mode, "protocol": self.protocol,
            "mixed_fraction": self.mixed_fraction,
            "ace_fraction": self.ace_fraction,
            "rollback_times": self.rollback_times,
            "rollback_depth": self.rollback_depth,
            "tenant": self.tenant,
        }


@dataclass
class ResolvedLaunch:
    """A launch spec bound to a concrete agent + launch kwargs."""

    agent: TourAgent
    at: str
    method: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    tenant: str = "default"


def build_world(spec: WorldSpec):
    """Build the world one spec describes (plus its telemetry journal).

    Returns ``(world, journal_or_none)``.  The ``world`` and
    ``sharded`` backends attach the journal to the live world through
    the :meth:`~repro.node.runtime.World.attach_journal` seam after the
    topology exists; the process backend bakes it into the worker spawn
    config (its facade refuses live attach), so it gets ``journal=`` at
    construction.
    """
    from repro.journal import MemoryJournal, WorldJournal
    from repro.node.procshard import ProcShardedWorld
    from repro.node.runtime import World
    from repro.node.sharded import ShardedWorld

    spec.validate()
    journal = (WorldJournal(MemoryJournal()) if spec.journal == "memory"
               else None)
    if spec.backend == "world":
        world: Any = World(seed=spec.seed)
    elif spec.backend == "sharded":
        kwargs: dict[str, Any] = {"n_shards": spec.n_shards,
                                  "seed": spec.seed,
                                  "lockstep": spec.lockstep}
        if spec.epoch is not None:
            kwargs["epoch"] = spec.epoch
        world = ShardedWorld(**kwargs)
    else:
        kwargs = {"n_shards": spec.n_shards, "seed": spec.seed,
                  "lockstep": spec.lockstep, "journal": journal}
        if spec.epoch is not None:
            kwargs["epoch"] = spec.epoch
        world = ProcShardedWorld(**kwargs)
    try:
        for i, name in enumerate(spec.node_names()):
            node = world.add_node(name)
            bank = Bank(BANK)
            bank.seed_account("merchant", 1_000_000,
                              overdraft=OverdraftPolicy.ALLOWED)
            bank.seed_account("escrow", 1_000_000,
                              overdraft=OverdraftPolicy.ALLOWED)
            node.add_resource(bank)
            directory = InfoDirectory(DIRECTORY)
            directory.publish("offers",
                              [{"item": "widget", "price": 10 + i}])
            node.add_resource(directory)
        world.enable_trace_digest()
        if journal is not None and spec.backend != "proc":
            world.attach_journal(journal)
    except BaseException:
        if hasattr(world, "close"):
            world.close()
        raise
    return world, journal


def resolve_launch(spec: LaunchSpec, world_spec: WorldSpec,
                   agent_id: str) -> ResolvedLaunch:
    """Bind a launch spec to a concrete agent over the world's ring."""
    spec.validate()
    plan = make_tour_plan(world_spec.node_names(), n_steps=spec.steps,
                          mixed_fraction=spec.mixed_fraction,
                          ace_fraction=spec.ace_fraction,
                          rollback_times=spec.rollback_times,
                          rollback_depth=spec.rollback_depth)
    agent = TourAgent(agent_id, plan)
    return ResolvedLaunch(
        agent=agent, at=plan.steps[0].node, method="run",
        kwargs={"mode": RollbackMode(spec.mode),
                "protocol": Protocol(spec.protocol)},
        tenant=spec.tenant)
