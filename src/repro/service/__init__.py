"""World-as-a-service: asyncio gateway hosting live sharded worlds.

See :mod:`repro.service.gateway` for the HTTP surface,
:mod:`repro.service.host` for the stepper-thread bridge between the
synchronous epoch-barrier drivers and the event loop, and
:mod:`repro.service.worlds` for the shared world/launch construction
path that makes gateway runs bit-identical to scripted runs.
"""

from repro.service.gateway import Gateway, serve
from repro.service.host import AdmissionFull, HostClosed, Subscription, WorldHost
from repro.service.worlds import (
    LaunchSpec,
    ResolvedLaunch,
    WorldSpec,
    build_world,
    resolve_launch,
)

__all__ = [
    "AdmissionFull",
    "Gateway",
    "HostClosed",
    "LaunchSpec",
    "ResolvedLaunch",
    "Subscription",
    "WorldHost",
    "WorldSpec",
    "build_world",
    "resolve_launch",
    "serve",
]
