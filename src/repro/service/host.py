"""The world host: a stepper thread bridging sync worlds to asyncio.

The epoch-barrier drivers are synchronous and blocking; the gateway is
an asyncio event loop.  :class:`WorldHost` owns one live world and runs
it on a dedicated **stepper thread** via the reentrant
``step_epoch()`` seam (PR 10), interleaving between barriers:

* **launch hand-off** — HTTP launch requests enqueue
  :class:`_LaunchCmd` objects on a *bounded* command queue; the stepper
  applies them between epochs (so launches serialize in arrival order
  on the barrier grid) and signals the waiting request thread;
* **admission control** — per-tenant in-flight caps and the bounded
  queue itself reject overload with :class:`AdmissionFull`, which the
  gateway maps to ``429`` + ``Retry-After``;
* **telemetry fan-out** — after each barrier the host emits structured
  events (``epoch`` per journal group commit, ``agent`` per terminal
  outcome, ``timeline`` deltas, periodic ``metrics`` snapshots) to
  every :class:`Subscription`.  Subscriber queues are bounded and
  *never* block the stepper: a slow client drops events (counted in
  ``events.dropped``), it does not stall the world;
* **graceful drain** — :meth:`drain` stops admission, lets the
  in-flight epoch finish, group-commits any buffered journal tail,
  emits a final ``drain`` event carrying outcomes and trace digests,
  and closes the world (which unlinks shm rings on the process
  backend).

Every read of world state (snapshots, agent lookups) takes the same
lock the stepper holds across one barrier, so observers only ever see
barrier-consistent state.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import UsageError
from repro.node.runtime import AgentStatus
from repro.service.worlds import (
    LaunchSpec,
    ResolvedLaunch,
    WorldSpec,
    build_world,
    resolve_launch,
)


class AdmissionFull(Exception):
    """The launch was rejected by admission control (HTTP 429)."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class HostClosed(Exception):
    """The host is draining or closed (HTTP 503)."""


@dataclass
class _LaunchCmd:
    resolved: ResolvedLaunch
    spec: LaunchSpec
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[dict[str, Any]] = None
    error: Optional[BaseException] = None


class Subscription:
    """One bounded event feed off a :class:`WorldHost`.

    Async subscribers (the SSE handler) pass their event loop: the
    stepper thread posts events via ``call_soon_threadsafe`` into a
    bounded :class:`asyncio.Queue`.  Sync subscribers (tests, benches)
    pass no loop and read a bounded :class:`queue.Queue`.  Either way a
    full queue **drops** the event and counts it — backpressure never
    propagates to the stepper.  A ``None`` item marks the end of the
    stream (host drained).
    """

    def __init__(self, depth: int = 256,
                 loop: Optional[asyncio.AbstractEventLoop] = None):
        self.loop = loop
        self.dropped = 0
        self.closed = False
        if loop is None:
            self._sync: Optional[queue.Queue] = queue.Queue(maxsize=depth)
            self._async: Optional[asyncio.Queue] = None
        else:
            self._sync = None
            self._async = asyncio.Queue(maxsize=depth)

    # -- producer side (stepper thread) -------------------------------------------

    def offer(self, item: Optional[dict[str, Any]]) -> None:
        if self.closed:
            return
        if self._sync is not None:
            try:
                self._sync.put_nowait(item)
            except queue.Full:
                self.dropped += 1
            return
        loop = self.loop
        assert loop is not None
        try:
            loop.call_soon_threadsafe(self._offer_async, item)
        except RuntimeError:  # loop already closed mid-drain
            self.closed = True

    def _offer_async(self, item: Optional[dict[str, Any]]) -> None:
        assert self._async is not None
        try:
            self._async.put_nowait(item)
        except asyncio.QueueFull:
            self.dropped += 1

    # -- consumer side ------------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Sync read (None ⇒ stream over); raises ``queue.Empty``."""
        assert self._sync is not None, "async subscription: use aget()"
        return self._sync.get(timeout=timeout)

    async def aget(self) -> Optional[dict[str, Any]]:
        """Async read (None ⇒ stream over)."""
        assert self._async is not None, "sync subscription: use get()"
        return await self._async.get()


class WorldHost:
    """One live world + its stepper thread + its subscribers.

    Knobs (all per world): ``max_inflight`` — per-tenant cap on
    launched-but-unfinished agents; ``max_pending`` — bound of the
    launch hand-off queue; ``retry_after`` — seconds suggested to
    rejected clients; ``sub_depth`` — per-subscriber event queue bound;
    ``metrics_every`` — barriers between ``metrics`` events;
    ``launch_timeout`` — how long a launch request waits for the
    stepper to apply its command.
    """

    def __init__(self, world_id: str, spec: WorldSpec, *,
                 max_inflight: int = 8, max_pending: int = 64,
                 retry_after: float = 1.0, sub_depth: int = 512,
                 metrics_every: int = 16, launch_timeout: float = 30.0,
                 idle_wait: float = 0.05):
        self.world_id = world_id
        self.spec = spec
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self.sub_depth = sub_depth
        self.metrics_every = metrics_every
        self.launch_timeout = launch_timeout
        self.idle_wait = idle_wait
        self.world, self.journal = build_world(spec)
        self._commands: queue.Queue = queue.Queue(maxsize=max_pending)
        #: Guards world state across one barrier (stepper) and during
        #: snapshot reads (request handlers).
        self._world_lock = threading.Lock()
        #: Guards subscriber/retained-event/admission bookkeeping.
        self._meta_lock = threading.Lock()
        self._subs: list[Subscription] = []
        self._retained: deque = deque(maxlen=1024)
        self._seq = 0
        self._agent_seq = 0
        self._inflight: dict[str, set[str]] = {}
        self._reported: set[str] = set()
        self._commits_seen = 0
        self._steps = 0
        self._timeline_pos: list[int] = []
        self._stopping = threading.Event()
        self._drained = threading.Event()
        #: Kicks the stepper out of its idle park (a launch arrived or
        #: a drain began) without waiting out ``idle_wait``.
        self._wake = threading.Event()
        self.events_dropped = 0
        #: Final snapshot captured at drain time, before the world
        #: closes (the process backend cannot be queried afterwards).
        self._final: Optional[dict[str, Any]] = None
        self._thread = threading.Thread(
            target=self._run, name=f"repro-host-{world_id}", daemon=True)
        self._started = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "WorldHost":
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    @property
    def draining(self) -> bool:
        return self._stopping.is_set()

    def drain(self, timeout: float = 30.0) -> dict[str, Any]:
        """Graceful shutdown: finish the epoch, commit, close, report.

        Idempotent; returns the final snapshot.  Raises
        :class:`UsageError` when the stepper fails to drain within
        ``timeout`` (the world is then left as-is for diagnosis).
        """
        self._stopping.set()
        self._wake.set()
        if self._started:
            self._drained.wait(timeout)
            if not self._drained.is_set():
                raise UsageError(
                    f"world {self.world_id} failed to drain within "
                    f"{timeout}s")
        else:
            self._shutdown()
        return self.snapshot()

    # -- admission + launch -------------------------------------------------------

    def launch(self, spec: LaunchSpec) -> dict[str, Any]:
        """Admit, enqueue and wait for one launch; returns the record.

        Raises :class:`AdmissionFull` on per-tenant overflow or a full
        hand-off queue, :class:`HostClosed` once draining.
        """
        if self._stopping.is_set():
            raise HostClosed(f"world {self.world_id} is draining")
        with self._meta_lock:
            tenant = spec.tenant
            inflight = self._inflight.setdefault(tenant, set())
            if len(inflight) >= self.max_inflight:
                raise AdmissionFull(
                    f"tenant {tenant!r} has {len(inflight)} launches in "
                    f"flight (max_inflight={self.max_inflight})",
                    self.retry_after)
            self._agent_seq += 1
            agent_id = spec.agent_id or f"ag-{self._agent_seq}"
            if agent_id in self.world.agents or agent_id in inflight:
                raise UsageError(f"agent {agent_id!r} already launched")
            inflight.add(agent_id)
        resolved = resolve_launch(spec, self.spec, agent_id)
        resolved.tenant = tenant
        cmd = _LaunchCmd(resolved=resolved, spec=spec)
        try:
            self._commands.put_nowait(cmd)
        except queue.Full:
            with self._meta_lock:
                inflight.discard(agent_id)
            raise AdmissionFull(
                f"launch queue full ({self._commands.maxsize} pending)",
                self.retry_after) from None
        self._wake.set()
        if not cmd.done.wait(self.launch_timeout):
            raise UsageError(
                f"launch of {agent_id!r} not applied within "
                f"{self.launch_timeout}s")
        if cmd.error is not None:
            with self._meta_lock:
                inflight.discard(agent_id)
            raise cmd.error
        assert cmd.result is not None
        return cmd.result

    # -- subscriptions ------------------------------------------------------------

    def subscribe(self, loop: Optional[asyncio.AbstractEventLoop] = None,
                  replay: bool = True) -> Subscription:
        """Attach one event feed; ``replay`` first delivers the retained
        backlog (bounded at 1024 events), gap-free with the live tail."""
        sub = Subscription(depth=self.sub_depth, loop=loop)
        with self._meta_lock:
            if replay:
                for item in self._retained:
                    sub.offer(item)
            if self._drained.is_set():
                sub.offer(None)
            else:
                self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        sub.closed = True
        with self._meta_lock:
            if sub in self._subs:
                self._subs.remove(sub)
            self.events_dropped += sub.dropped

    def _emit(self, event: str, data: dict[str, Any]) -> None:
        with self._meta_lock:
            self._seq += 1
            item = {"seq": self._seq, "event": event, "data": data}
            self._retained.append(item)
            for sub in self._subs:
                sub.offer(item)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Barrier-consistent world summary (the ``GET /worlds/{id}``)."""
        with self._world_lock:
            if self._final is not None:
                return dict(self._final)
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, Any]:
        world = self.world
        counters = (world.counters() if hasattr(world, "counters")
                    else dict(world.metrics.summary()))
        snap = {
            "world": self.world_id,
            "spec": self.spec.to_json(),
            "status": ("drained" if self._drained.is_set() else
                       "draining" if self._stopping.is_set() else
                       "running"),
            "now": self._now(),
            "epochs": self._steps,
            "agents": world.outcomes(),
            "counters": counters,
            "serialization_stats": world.serialization_stats(),
            "trace_digests": world.trace_digests(),
            "events_dropped": self.events_dropped
            + sum(s.dropped for s in self._subs),
        }
        if self.journal is not None:
            snap["journal"] = self.journal.stats()
        return snap

    def agent_snapshot(self, agent_id: str) -> dict[str, Any]:
        with self._world_lock:
            if self._final is not None:
                outcome = self._final["agents"].get(agent_id)
            else:
                outcome = self.world.outcomes().get(agent_id)
        if outcome is None:
            raise UsageError(f"no agent {agent_id!r}")
        return {"agent": agent_id, "world": self.world_id, **outcome}

    def _now(self) -> float:
        world = self.world
        now = getattr(world, "now", None)
        if now is None:
            now = world.sim.now
        return float(now) if now != float("-inf") else 0.0

    # -- the stepper thread -------------------------------------------------------

    def _run(self) -> None:
        self._emit("world", {"world": self.world_id,
                             "spec": self.spec.to_json()})
        try:
            while not self._stopping.is_set():
                applied = self._apply_commands()
                with self._world_lock:
                    progressed = self.world.step_epoch()
                    if progressed:
                        self._steps += 1
                    self._post_step(progressed)
                if not progressed and not applied:
                    # Idle: park until a launch arrives or drain starts.
                    self._wake.wait(self.idle_wait)
                    self._wake.clear()
        except BaseException as exc:  # pragma: no cover - defensive
            self._emit("error", {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            self._shutdown()

    def _apply_commands(self) -> bool:
        applied = False
        while True:
            try:
                cmd = self._commands.get_nowait()
            except queue.Empty:
                return applied
            try:
                with self._world_lock:
                    record = self.world.launch(
                        cmd.resolved.agent, at=cmd.resolved.at,
                        method=cmd.resolved.method, **cmd.resolved.kwargs)
                cmd.result = {
                    "agent": record.agent_id, "world": self.world_id,
                    "tenant": cmd.resolved.tenant,
                    "status": record.status.value,
                    "launched_at": self._now(),
                }
                self._emit("launch", dict(cmd.result))
                applied = True
            except BaseException as exc:
                cmd.error = exc
            finally:
                cmd.done.set()

    def _post_step(self, progressed: bool) -> None:
        """Telemetry after one barrier (world lock held)."""
        world = self.world
        if self.journal is not None:
            commits = self.journal.stats()["commits"]
            while self._commits_seen < commits:
                self._emit("epoch", {"commit": self._commits_seen,
                                     "barrier": self._now(),
                                     "epochs": self._steps})
                self._commits_seen += 1
        elif progressed:
            self._emit("epoch", {"commit": None, "barrier": self._now(),
                                 "epochs": self._steps})
        self._emit_timeline()
        for agent_id, record in world.agents.items():
            if record.status is AgentStatus.RUNNING:
                continue
            if agent_id in self._reported:
                continue
            self._reported.add(agent_id)
            outcome = world.outcomes().get(agent_id, {})
            self._emit("agent", {"agent": agent_id, **outcome})
            with self._meta_lock:
                for inflight in self._inflight.values():
                    inflight.discard(agent_id)
        if progressed and self.metrics_every \
                and self._steps % self.metrics_every == 0:
            self._emit_metrics()

    def _emit_timeline(self) -> None:
        """Ship new per-agent timeline records (world lock held).

        The single-kernel and in-process-shard backends expose live
        :class:`~repro.sim.metrics.Metrics` timelines; the process
        backend's live only in its workers, so there the ``agent`` /
        ``epoch`` events are the timeline.
        """
        world = self.world
        if hasattr(world, "shards"):
            sources = [w.metrics.timeline for w in world.shards]
        elif hasattr(world, "metrics"):
            sources = [world.metrics.timeline]
        else:
            return
        if len(self._timeline_pos) != len(sources):
            self._timeline_pos = [0] * len(sources)
        fresh: list[tuple[float, str, dict]] = []
        for i, timeline in enumerate(sources):
            fresh.extend(timeline[self._timeline_pos[i]:])
            self._timeline_pos[i] = len(timeline)
        if not fresh:
            return
        fresh.sort(key=lambda item: item[0])
        self._emit("timeline", {"entries": [
            {"at": at, "kind": kind, **details}
            for at, kind, details in fresh]})

    def _emit_metrics(self) -> None:
        world = self.world
        counters = (world.counters() if hasattr(world, "counters")
                    else dict(world.metrics.summary()))
        self._emit("metrics", {
            "now": self._now(), "epochs": self._steps,
            "counters": counters,
            "serialization_stats": world.serialization_stats()})

    def _shutdown(self) -> None:
        """Drain tail: reject stragglers, commit, report, close."""
        self._stopping.set()
        while True:
            try:
                cmd = self._commands.get_nowait()
            except queue.Empty:
                break
            cmd.error = HostClosed(f"world {self.world_id} is draining")
            cmd.done.set()
        with self._world_lock:
            world = self.world
            try:
                if self.journal is not None:
                    # The last idle step already group-committed a
                    # drained world; a mid-run drain flushes its
                    # buffered tail here.
                    world._journal_final_commit()
                    commits = self.journal.stats()["commits"]
                    while self._commits_seen < commits:
                        self._emit("epoch",
                                   {"commit": self._commits_seen,
                                    "barrier": self._now(),
                                    "epochs": self._steps})
                        self._commits_seen += 1
                self._emit_timeline()
                self._emit("drain", {
                    "world": self.world_id, "now": self._now(),
                    "epochs": self._steps, "agents": world.outcomes(),
                    "trace_digests": world.trace_digests(),
                    "journal": (self.journal.stats()
                                if self.journal is not None else None),
                })
                final = self._snapshot_locked()
                final["status"] = "drained"
            except BaseException as exc:
                # A world whose workers already died cannot be queried;
                # still report *something* and keep the drain moving.
                final = {"world": self.world_id,
                         "spec": self.spec.to_json(),
                         "status": "drained", "agents": {},
                         "error": f"{type(exc).__name__}: {exc}"}
                self._emit("error", dict(final))
            self._final = final
            if hasattr(world, "close"):
                world.close()
        with self._meta_lock:
            subs, self._subs = self._subs, []
        for sub in subs:
            sub.offer(None)
        self._drained.set()
